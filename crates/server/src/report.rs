//! Per-job outcome records and the soak-run aggregate.
//!
//! Every job the service touches — completed, degraded, refused at
//! admission, shed, or quarantined — produces exactly one [`JobReport`]
//! carrying everything a post-mortem needs: the final ladder rung and
//! every recorded transition with its cause, the structured error class
//! and text, the chaos seed and drawn fault class (so
//! `tossa_bench::reduce` can replay and shrink the failure
//! deterministically), the resource usage, and the compiled code text
//! itself for completed jobs (LAI `Display` round-trips through the
//! parser, so the report *is* the artifact).
//!
//! Reports export as one-line `tossa-job-report/1` JSON — the JSONL
//! stream the soak gate and the CI artifact consume.

use crate::ladder::{LadderStep, Rung};
use std::fmt::Write as _;
use tossa_trace::escape_json;

/// Terminal state of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Usable code was produced (possibly degraded — see the rung).
    Completed,
    /// The job entered the ladder and descended off the bottom: a
    /// structured reject with full cause provenance.
    Rejected,
    /// The frame was refused at admission (never entered the ladder).
    FrameRejected,
    /// The admission queue stayed full; the job was shed.
    Shed,
    /// Transient failures (contained panics, blown deadlines, busted
    /// allocation budgets) survived every retry; the job is poison.
    Quarantined,
}

impl JobOutcome {
    /// Stable snake_case key for JSON.
    pub fn name(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Rejected => "rejected",
            JobOutcome::FrameRejected => "frame_rejected",
            JobOutcome::Shed => "shed",
            JobOutcome::Quarantined => "quarantined",
        }
    }
}

/// The full record of one job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job id.
    pub id: u64,
    /// Function name (empty for frames that never parsed).
    pub function: String,
    /// Stable experiment key the job ran under.
    pub experiment: String,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Final ladder rung ([`Rung::Checked`] for a clean completion).
    pub rung: Rung,
    /// Every recorded ladder transition, in order.
    pub ladder: Vec<LadderStep>,
    /// Stable class of the decisive error (`None` on a clean run).
    pub error_class: Option<String>,
    /// Human-readable text of the decisive error.
    pub error: Option<String>,
    /// Attempts spent (1 = no retry).
    pub attempts: u32,
    /// Chaos base seed in effect (`None` = chaos off).
    pub chaos_seed: Option<u64>,
    /// Class of the fault drawn on the final attempt, if any.
    pub chaos_class: Option<String>,
    /// Seed that synthesized the differential inputs (when the client
    /// sent none) — with `generator_seed`, enough to replay offline.
    pub inputs_seed: Option<u64>,
    /// Seed that generated the function itself (soak mode only).
    pub generator_seed: Option<u64>,
    /// Wall clock of the final attempt.
    pub wall_ns: u64,
    /// Heap allocation events metered on the final attempt (0 when the
    /// meter is not installed).
    pub alloc_events: u64,
    /// Bytes requested by those events (growth only for reallocs; 0
    /// when the meter is not installed).
    pub alloc_bytes: u64,
    /// Panics contained across all attempts of this job.
    pub panics_contained: u32,
    /// Whether the final attempt blew its wall-clock deadline.
    pub deadline_blown: bool,
    /// Whether the produced code passed differential execution.
    pub verified: bool,
    /// Static move count of the produced code.
    pub moves: Option<u64>,
    /// The produced code text (completed jobs only).
    pub code: Option<String>,
    /// Per-job pipeline counter totals as a `tossa-counters/1` JSON
    /// object (the explain/trace artifact of the response).
    pub counters_json: Option<String>,
}

fn opt_str(out: &mut String, key: &str, v: &Option<String>) {
    if let Some(s) = v {
        let _ = write!(out, ", \"{key}\": \"{}\"", escape_json(s));
    }
}

fn opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    if let Some(n) = v {
        let _ = write!(out, ", \"{key}\": {n}");
    }
}

impl JobReport {
    /// Renders the report as one `tossa-job-report/1` JSON line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\": \"tossa-job-report/1\"");
        let _ = write!(out, ", \"id\": {}", self.id);
        let _ = write!(out, ", \"function\": \"{}\"", escape_json(&self.function));
        let _ = write!(
            out,
            ", \"experiment\": \"{}\"",
            escape_json(&self.experiment)
        );
        let _ = write!(out, ", \"outcome\": \"{}\"", self.outcome.name());
        let _ = write!(out, ", \"rung\": \"{}\"", self.rung.name());
        out.push_str(", \"ladder\": [");
        for (k, s) in self.ladder.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"from\": \"{}\", \"to\": \"{}\", \"cause\": \"{}\"}}",
                s.from.name(),
                s.to.name(),
                escape_json(&s.cause)
            );
        }
        out.push(']');
        opt_str(&mut out, "error_class", &self.error_class);
        opt_str(&mut out, "error", &self.error);
        let _ = write!(out, ", \"attempts\": {}", self.attempts);
        opt_u64(&mut out, "chaos_seed", self.chaos_seed);
        opt_str(&mut out, "chaos_class", &self.chaos_class);
        opt_u64(&mut out, "inputs_seed", self.inputs_seed);
        opt_u64(&mut out, "generator_seed", self.generator_seed);
        let _ = write!(out, ", \"wall_ns\": {}", self.wall_ns);
        let _ = write!(out, ", \"alloc_events\": {}", self.alloc_events);
        let _ = write!(out, ", \"alloc_bytes\": {}", self.alloc_bytes);
        let _ = write!(out, ", \"panics_contained\": {}", self.panics_contained);
        let _ = write!(out, ", \"deadline_blown\": {}", self.deadline_blown);
        let _ = write!(out, ", \"verified\": {}", self.verified);
        opt_u64(&mut out, "moves", self.moves);
        opt_str(&mut out, "code", &self.code);
        if let Some(c) = &self.counters_json {
            let _ = write!(out, ", \"counters\": {c}");
        }
        out.push('}');
        out
    }
}

/// Aggregate invariants of a soak run, computed from the report stream.
#[derive(Clone, Debug, Default)]
pub struct SoakSummary {
    /// Total reports.
    pub total: usize,
    /// Completed at [`Rung::Checked`].
    pub completed_checked: usize,
    /// Completed at [`Rung::NaiveFallback`].
    pub completed_fallback: usize,
    /// Structured rejects (ladder bottom).
    pub rejected: usize,
    /// Admission refusals of malformed frames.
    pub frame_rejected: usize,
    /// Shed at the queue.
    pub shed: usize,
    /// Quarantined as poison.
    pub quarantined: usize,
    /// Total panics contained.
    pub panics_contained: u64,
    /// Reports whose ladder record skips a rung (must stay 0).
    pub ladder_violations: usize,
    /// Failure-class reports lacking a structured error class (must
    /// stay 0).
    pub unclassified_failures: usize,
    /// Completed reports that did not verify (must stay 0).
    pub unverified_completions: usize,
    /// p50 of per-job wall clock (final attempt), over jobs that ran.
    pub wall_p50_ns: Option<u64>,
    /// p90 of per-job wall clock.
    pub wall_p90_ns: Option<u64>,
    /// p99 of per-job wall clock.
    pub wall_p99_ns: Option<u64>,
    /// p50 of admission queue wait (from the service's
    /// `service_queue_wait_ns` histogram, when attached).
    pub queue_wait_p50_ns: Option<u64>,
    /// p90 of admission queue wait.
    pub queue_wait_p90_ns: Option<u64>,
    /// p99 of admission queue wait.
    pub queue_wait_p99_ns: Option<u64>,
}

/// Exact percentile of a sorted sample (nearest-rank: the smallest
/// element with at least `q` of the mass at or below it).
fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

impl SoakSummary {
    /// Folds a report stream into the aggregate.
    pub fn from_reports(reports: &[JobReport]) -> SoakSummary {
        let mut s = SoakSummary {
            total: reports.len(),
            ..SoakSummary::default()
        };
        for r in reports {
            match r.outcome {
                JobOutcome::Completed => match r.rung {
                    Rung::Checked => s.completed_checked += 1,
                    _ => s.completed_fallback += 1,
                },
                JobOutcome::Rejected => s.rejected += 1,
                JobOutcome::FrameRejected => s.frame_rejected += 1,
                JobOutcome::Shed => s.shed += 1,
                JobOutcome::Quarantined => s.quarantined += 1,
            }
            s.panics_contained += u64::from(r.panics_contained);
            if !crate::ladder::steps_are_contiguous(&r.ladder) {
                s.ladder_violations += 1;
            }
            let is_failure = !matches!(r.outcome, JobOutcome::Completed) || r.rung != Rung::Checked;
            if is_failure && r.error_class.is_none() {
                s.unclassified_failures += 1;
            }
            if matches!(r.outcome, JobOutcome::Completed) && !r.verified {
                s.unverified_completions += 1;
            }
        }
        // Latency percentiles over jobs that actually ran an attempt
        // (shed and frame-rejected reports carry wall_ns 0 by
        // construction and would drag the tail down artificially).
        let mut walls: Vec<u64> = reports
            .iter()
            .filter(|r| !matches!(r.outcome, JobOutcome::Shed | JobOutcome::FrameRejected))
            .map(|r| r.wall_ns)
            .collect();
        walls.sort_unstable();
        s.wall_p50_ns = percentile(&walls, 0.50);
        s.wall_p90_ns = percentile(&walls, 0.90);
        s.wall_p99_ns = percentile(&walls, 0.99);
        s
    }

    /// Attaches queue-wait percentiles from the service's
    /// `service_queue_wait_ns` histogram snapshot.
    pub fn set_queue_wait(&mut self, snap: &tossa_trace::metrics::HistogramSnapshot) {
        self.queue_wait_p50_ns = snap.quantile(0.50);
        self.queue_wait_p90_ns = snap.quantile(0.90);
        self.queue_wait_p99_ns = snap.quantile(0.99);
    }

    /// The soak gate: every invariant the chaos run must uphold.
    pub fn holds(&self) -> bool {
        self.ladder_violations == 0
            && self.unclassified_failures == 0
            && self.unverified_completions == 0
    }
}

impl std::fmt::Display for SoakSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "soak: {} jobs — {} checked, {} degraded, {} rejected, {} frame-rejected, \
             {} shed, {} quarantined",
            self.total,
            self.completed_checked,
            self.completed_fallback,
            self.rejected,
            self.frame_rejected,
            self.shed,
            self.quarantined
        )?;
        writeln!(
            f,
            "      {} panics contained; violations: ladder {}, unclassified {}, unverified {}",
            self.panics_contained,
            self.ladder_violations,
            self.unclassified_failures,
            self.unverified_completions
        )?;
        fn ms(v: Option<u64>) -> String {
            v.map_or_else(|| "-".to_string(), |n| format!("{:.2}ms", n as f64 / 1e6))
        }
        writeln!(
            f,
            "      job latency p50/p90/p99: {}/{}/{}; queue wait p50/p90/p99: {}/{}/{}",
            ms(self.wall_p50_ns),
            ms(self.wall_p90_ns),
            ms(self.wall_p99_ns),
            ms(self.queue_wait_p50_ns),
            ms(self.queue_wait_p90_ns),
            ms(self.queue_wait_p99_ns)
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn minimal(outcome: JobOutcome, rung: Rung) -> JobReport {
        JobReport {
            id: 1,
            function: "f".into(),
            experiment: "LphiAbiC".into(),
            outcome,
            rung,
            ladder: Vec::new(),
            error_class: None,
            error: None,
            attempts: 1,
            chaos_seed: None,
            chaos_class: None,
            inputs_seed: None,
            generator_seed: None,
            wall_ns: 10,
            alloc_events: 0,
            alloc_bytes: 0,
            panics_contained: 0,
            deadline_blown: false,
            verified: true,
            moves: Some(3),
            code: Some("func @f {\n}".into()),
            counters_json: None,
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut r = minimal(JobOutcome::Completed, Rung::Checked);
        r.ladder.push(LadderStep {
            from: Rung::Checked,
            to: Rung::NaiveFallback,
            cause: "verify.divergence \"quoted\"".into(),
        });
        r.error_class = Some("verify.divergence".into());
        r.error = Some("on [1, 2]: outputs differ".into());
        r.chaos_seed = Some(7);
        r.chaos_class = Some("service.worker_panic".into());
        r.counters_json = Some("{\"schema\": \"x\", \"n\": 1}".into());
        let json = r.to_json();
        tossa_trace::validate_json(&json).expect("well-formed report JSON");
        assert!(json.contains("\"schema\": \"tossa-job-report/1\""));
        assert!(json.contains("\"cause\": \"verify.divergence \\\"quoted\\\"\""));
    }

    #[test]
    fn summary_counts_and_gate() {
        let mut bad = minimal(JobOutcome::Rejected, Rung::Reject);
        bad.error_class = None; // a failure without a class: gate trips
        let reports = vec![
            minimal(JobOutcome::Completed, Rung::Checked),
            minimal(JobOutcome::Completed, Rung::Checked),
            bad,
        ];
        let s = SoakSummary::from_reports(&reports);
        assert_eq!(s.total, 3);
        assert_eq!(s.completed_checked, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.unclassified_failures, 1);
        assert!(!s.holds());

        let mut ok = minimal(JobOutcome::Rejected, Rung::Reject);
        ok.error_class = Some("verify.trap".into());
        ok.ladder.push(LadderStep {
            from: Rung::Checked,
            to: Rung::NaiveFallback,
            cause: "verify.trap".into(),
        });
        ok.ladder.push(LadderStep {
            from: Rung::NaiveFallback,
            to: Rung::Reject,
            cause: "verify.trap".into(),
        });
        let s = SoakSummary::from_reports(&[minimal(JobOutcome::Completed, Rung::Checked), ok]);
        assert!(s.holds(), "{s}");
    }

    #[test]
    fn skipped_rung_in_a_report_trips_the_gate() {
        let mut r = minimal(JobOutcome::Rejected, Rung::Reject);
        r.error_class = Some("panic".into());
        r.ladder.push(LadderStep {
            from: Rung::Checked,
            to: Rung::Reject,
            cause: "panic".into(),
        });
        let s = SoakSummary::from_reports(&[r]);
        assert_eq!(s.ladder_violations, 1);
        assert!(!s.holds());
    }
}
