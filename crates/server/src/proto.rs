//! The wire protocol: newline-delimited JSON job frames.
//!
//! One request frame per line:
//!
//! ```json
//! {"id": 7, "experiment": "LphiAbiC", "func": "func @f {\n...\n}",
//!  "inputs": [[1, 2], [3, 4]]}
//! ```
//!
//! * `func` (required) — the LAI function text (the same surface syntax
//!   `parse_function` accepts and `Function`'s `Display` emits);
//! * `id` (optional) — client-chosen job id, defaulted from an
//!   admission counter;
//! * `experiment` (optional) — a stable experiment key (the
//!   `Experiment` debug name, e.g. `LphiAbiC`); defaults to the
//!   service's configured experiment;
//! * `inputs` (optional) — input vectors for differential execution;
//!   when absent, deterministic vectors are synthesized from the
//!   function's input arity and the frame's id.
//!
//! Every way a frame can be malformed maps to a [`FrameError`] variant
//! with a stable class key, so a garbage line produces a structured
//! refusal — never a panic, never a dropped connection.
//!
//! Besides job frames the protocol carries **control frames** — JSON
//! objects with a `"control"` key instead of `"func"`:
//!
//! ```json
//! {"control": "stats"}
//! ```
//!
//! answered in-line with one `tossa-service-stats/1` snapshot of the
//! live server's telemetry ([`parse_control`]). An unknown control
//! verb is a structured [`FrameError::UnknownControl`] refusal.

use tossa_core::Experiment;
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;
use tossa_ir::rng::SplitMix64;
use tossa_ir::{Function, Opcode};
use tossa_trace::json::{parse_json, Json};

/// A parsed, admitted job request.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Job id (client-chosen or admission-assigned).
    pub id: u64,
    /// The parsed pre-SSA function.
    pub func: Function,
    /// Experiment to run (`None` = service default).
    pub experiment: Option<Experiment>,
    /// Input vectors for differential execution.
    pub inputs: Vec<Vec<i64>>,
    /// Seed that synthesized `inputs` when the frame carried none
    /// (recorded in the report for deterministic replay).
    pub inputs_seed: Option<u64>,
}

/// A structured frame refusal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The line is not well-formed JSON.
    Json(String),
    /// The frame is JSON but not an object, or lacks `func`.
    MissingFunc,
    /// The `experiment` key names no known experiment.
    UnknownExperiment(String),
    /// The `func` text does not parse as an LAI function.
    BadFunction(String),
    /// The `inputs` value is not an array of arrays of numbers.
    BadInputs,
    /// The `control` key names no known control verb.
    UnknownControl(String),
}

impl FrameError {
    /// Stable classification key (the frame-level analog of
    /// `TossaError::class_key`).
    pub fn class_key(&self) -> &'static str {
        match self {
            FrameError::Json(_) => "frame.json",
            FrameError::MissingFunc => "frame.missing_func",
            FrameError::UnknownExperiment(_) => "frame.unknown_experiment",
            FrameError::BadFunction(_) => "frame.bad_function",
            FrameError::BadInputs => "frame.bad_inputs",
            FrameError::UnknownControl(_) => "frame.unknown_control",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Json(e) => write!(f, "frame is not JSON: {e}"),
            FrameError::MissingFunc => write!(f, "frame lacks a \"func\" string"),
            FrameError::UnknownExperiment(s) => write!(f, "unknown experiment {s:?}"),
            FrameError::BadFunction(e) => write!(f, "function does not parse: {e}"),
            FrameError::BadInputs => write!(f, "\"inputs\" is not an array of number arrays"),
            FrameError::UnknownControl(s) => write!(f, "unknown control verb {s:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A control frame: an in-band query answered by the server itself
/// rather than scheduled onto a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// `{"control": "stats"}` — answer with one `tossa-service-stats/1`
    /// snapshot line.
    Stats,
}

/// Classifies a line as a control frame. Returns `None` when the line
/// is not one (not JSON, not an object, or no `"control"` key) — the
/// caller then treats it as a job frame. A present-but-unknown control
/// verb is a structured refusal, not a fall-through: silently
/// reinterpreting a typoed query as a job frame would produce a
/// confusing `frame.missing_func` reject.
pub fn parse_control(line: &str) -> Option<Result<Control, FrameError>> {
    let doc = parse_json(line).ok()?;
    let verb = doc.get("control")?;
    Some(match verb.as_str() {
        Some("stats") => Ok(Control::Stats),
        Some(other) => Err(FrameError::UnknownControl(other.to_string())),
        None => Err(FrameError::UnknownControl(
            "non-string control value".to_string(),
        )),
    })
}

/// Resolves a stable experiment key (the `Experiment` debug name, e.g.
/// `"LphiAbiC"`) back to the experiment. The enum deliberately has no
/// `FromStr`; the service keys off the same strings the trajectory
/// schema uses.
pub fn experiment_from_key(key: &str) -> Option<Experiment> {
    Experiment::all()
        .iter()
        .copied()
        .find(|e| format!("{e:?}") == key)
}

/// Number of input values the function consumes: the widest `input`
/// instruction (each reads from the front of the input vector).
pub fn input_arity(f: &Function) -> usize {
    f.all_insts()
        .filter(|&(_, i)| f.inst(i).opcode == Opcode::Input)
        .map(|(_, i)| f.inst(i).defs.len())
        .max()
        .unwrap_or(0)
}

/// Synthesizes deterministic differential-execution inputs for a
/// function with no client-provided vectors: 8 vectors of small signed
/// values, reproducible from `seed`.
pub fn default_inputs(f: &Function, seed: u64) -> Vec<Vec<i64>> {
    let arity = input_arity(f);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x05EE_D1A1);
    (0..8)
        .map(|_| (0..arity).map(|_| rng.random_range(-100i64..100)).collect())
        .collect()
}

fn parse_inputs(v: &Json) -> Result<Vec<Vec<i64>>, FrameError> {
    let rows = v.as_arr().ok_or(FrameError::BadInputs)?;
    rows.iter()
        .map(|row| {
            row.as_arr()
                .ok_or(FrameError::BadInputs)?
                .iter()
                .map(|n| n.as_f64().map(|x| x as i64).ok_or(FrameError::BadInputs))
                .collect()
        })
        .collect()
}

/// Parses one request line. `default_id` is assigned when the frame
/// carries no `id` and seeds the synthesized inputs.
///
/// # Errors
/// Any malformed aspect of the frame, as a structured [`FrameError`].
pub fn parse_frame(line: &str, default_id: u64) -> Result<JobRequest, FrameError> {
    let doc = parse_json(line).map_err(FrameError::Json)?;
    let id = doc.get("id").and_then(Json::as_u64).unwrap_or(default_id);
    let text = doc
        .get("func")
        .and_then(Json::as_str)
        .ok_or(FrameError::MissingFunc)?;
    let func = parse_function(text, &Machine::dsp32())
        .map_err(|e| FrameError::BadFunction(e.to_string()))?;
    let experiment = match doc.get("experiment").and_then(Json::as_str) {
        Some(key) => Some(
            experiment_from_key(key)
                .ok_or_else(|| FrameError::UnknownExperiment(key.to_string()))?,
        ),
        None => None,
    };
    let (inputs, inputs_seed) = match doc.get("inputs") {
        Some(v) => (parse_inputs(v)?, None),
        None => (default_inputs(&func, id), Some(id)),
    };
    Ok(JobRequest {
        id,
        func,
        experiment,
        inputs,
        inputs_seed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    const FUNC: &str = "func @f {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  ret %c\n}";

    fn frame_json(extra: &str) -> String {
        let escaped = tossa_trace::escape_json(FUNC);
        format!("{{\"func\": \"{escaped}\"{extra}}}")
    }

    #[test]
    fn minimal_frame_parses_with_synthesized_inputs() {
        let req = parse_frame(&frame_json(""), 42).unwrap();
        assert_eq!(req.id, 42);
        assert_eq!(req.func.name, "f");
        assert!(req.experiment.is_none());
        assert_eq!(req.inputs.len(), 8);
        assert!(req.inputs.iter().all(|v| v.len() == 2));
        assert_eq!(req.inputs_seed, Some(42));
        // Determinism: the same id synthesizes the same vectors.
        assert_eq!(parse_frame(&frame_json(""), 42).unwrap().inputs, req.inputs);
    }

    #[test]
    fn full_frame_parses() {
        let req = parse_frame(
            &frame_json(", \"id\": 9, \"experiment\": \"LphiAbiC\", \"inputs\": [[1, -2]]"),
            0,
        )
        .unwrap();
        assert_eq!(req.id, 9);
        assert_eq!(format!("{:?}", req.experiment.unwrap()), "LphiAbiC");
        assert_eq!(req.inputs, vec![vec![1, -2]]);
        assert_eq!(req.inputs_seed, None);
    }

    #[test]
    fn every_malformation_is_a_distinct_structured_class() {
        let cases: Vec<(String, &str)> = vec![
            ("not json at all".into(), "frame.json"),
            ("{\"id\": 1}".into(), "frame.missing_func"),
            (
                frame_json(", \"experiment\": \"NoSuch\""),
                "frame.unknown_experiment",
            ),
            (
                "{\"func\": \"func @broken {\"}".into(),
                "frame.bad_function",
            ),
            (frame_json(", \"inputs\": [\"x\"]"), "frame.bad_inputs"),
        ];
        for (line, class) in cases {
            let err = parse_frame(&line, 0).unwrap_err();
            assert_eq!(err.class_key(), class, "{line}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn experiment_keys_round_trip_for_all_ten() {
        for &e in Experiment::all() {
            let key = format!("{e:?}");
            assert_eq!(experiment_from_key(&key), Some(e), "{key}");
        }
        assert_eq!(experiment_from_key("Bogus"), None);
    }

    #[test]
    fn control_frames_classify_without_stealing_job_frames() {
        assert_eq!(
            parse_control("{\"control\": \"stats\"}"),
            Some(Ok(Control::Stats))
        );
        // Unknown verbs refuse structurally rather than falling through.
        let err = parse_control("{\"control\": \"bogus\"}")
            .unwrap()
            .unwrap_err();
        assert_eq!(err.class_key(), "frame.unknown_control");
        assert_eq!(
            parse_control("{\"control\": 3}")
                .unwrap()
                .unwrap_err()
                .class_key(),
            "frame.unknown_control"
        );
        // Job frames, garbage, and non-objects are not control frames.
        assert_eq!(parse_control(&frame_json("")), None);
        assert_eq!(parse_control("not json"), None);
        assert_eq!(parse_control("[1, 2]"), None);
    }

    #[test]
    fn input_arity_reads_the_widest_input_inst() {
        let f = parse_function(FUNC, &Machine::dsp32()).unwrap();
        assert_eq!(input_arity(&f), 2);
    }
}
