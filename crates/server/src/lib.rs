//! # tossa-server — a fault-isolated compile service
//!
//! A long-running service over the checked out-of-SSA pipeline: clients
//! stream LAI functions in (newline-delimited JSON frames over stdin or
//! a TCP socket), the service schedules them function-granularly onto a
//! worker pool, and one [`report::JobReport`] streams back per job with
//! the allocated code and its explain/trace artifact.
//!
//! The point of the crate is the **robustness envelope** around the
//! pipeline, not the pipeline itself (that lives in `tossa-core` /
//! `tossa-bench`):
//!
//! * **Panic containment** — every job attempt runs inside
//!   `catch_unwind`; a pass bug takes down one attempt, never a worker,
//!   never the process ([`service`]).
//! * **Resource budgets** — interpreter fuel bounds CPU, a watchdog
//!   thread marks wall-clock deadline overruns ([`watchdog`]), and a
//!   metering global allocator charges per-attempt allocation events
//!   ([`budget`]).
//! * **Degradation ladder** — checked pipeline → verified naive
//!   out-of-SSA fallback → structured reject, one rung at a time, every
//!   transition recorded with its cause ([`ladder`]).
//! * **Retry and quarantine** — transient failures (contained panics,
//!   blown deadlines, busted allocation budgets) retry with exponential
//!   backoff; jobs that keep failing are quarantined as poison.
//! * **Backpressure** — a bounded admission queue sheds load with
//!   structured reports instead of growing without bound ([`queue`]).
//! * **Service-level chaos** — the soak gate drives the whole loop
//!   under deterministic fault injection: the pipeline corruption
//!   classes plus worker panics, deadline blowouts, and malformed
//!   frames ([`chaos`]).
//! * **Live telemetry** — a lock-free instrument set (queue gauges,
//!   latency/fuel/allocation histograms) answerable over the wire as a
//!   `stats` control frame or a Prometheus exposition ([`metrics`]),
//!   plus a flight recorder ring of recent job lifecycle events dumped
//!   on quarantine or soak-gate failure ([`flight`]).
//!
//! Unlike the library crates (whose unwrap audit is warn-only), this
//! crate sits entirely on the untrusted path and compiles with
//! `clippy::unwrap_used` / `expect_used` / `panic` at **deny**.

#![warn(missing_docs)]

pub mod budget;
pub mod chaos;
pub mod flight;
pub mod ladder;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod report;
pub mod service;
pub mod watchdog;

pub use budget::{AllocMeter, Budget, ServiceAlloc};
pub use chaos::{site_seed, ChaosConfig, Fault, ServiceFault};
pub use flight::{FlightEvent, FlightRecorder, FLIGHT_STAGES};
pub use ladder::{steps_are_contiguous, Ladder, LadderStep, Rung};
pub use metrics::{QueueMetrics, ServiceMetrics};
pub use proto::{parse_control, parse_frame, Control, FrameError, JobRequest};
pub use queue::{BoundedQueue, PushOutcome};
pub use report::{JobOutcome, JobReport, SoakSummary};
pub use service::{run_batch, CompileService, Job, ServiceConfig};
pub use watchdog::{WatchGuard, Watchdog};
