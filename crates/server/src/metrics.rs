//! Service-level telemetry: the closed instrument set the compile
//! service records, its `tossa-service-stats/1` JSON snapshot, and its
//! Prometheus text exposition.
//!
//! The instruments live in a [`tossa_trace::metrics::Registry`] —
//! lock-free sharded atomics on every write path — and the set is
//! **closed**: every name below is pinned by the golden test in
//! `tests/service_stats.rs`, so a rename is a deliberate schema
//! change, exactly like the pipeline counters. The compile pipeline
//! itself is untouched: all recording happens in the service layer
//! (queue, worker loop, attempt boundary), so trajectory cells stay
//! byte-identical with or without a running registry.
//!
//! Instrument map:
//!
//! | name | kind | written from |
//! |------|------|--------------|
//! | `service_queue_depth` | gauge | [`crate::queue`] push/pop |
//! | `service_workers_busy` | gauge | worker loop |
//! | `service_queue_wait_ns` | histogram | backpressure wait inside `push` (one record per push, shed or accepted) |
//! | `service_queue_latency_ns` | histogram | admission → dequeue |
//! | `service_job_latency_ns{rung=…}` | histogram | admission → terminal report, keyed by final ladder rung |
//! | `service_attempt_latency_ns{result=…}` | histogram | each attempt's wall clock, keyed by how it ended |
//! | `service_stage_latency_ns{stage=…}` | histogram | compile (the contained pipeline run) and verify (output seal) |
//! | `service_fuel_used` | histogram | interpreter steps per completed attempt |
//! | `service_alloc_events` | histogram | metered heap events per attempt |
//! | `service_alloc_bytes` | histogram | metered heap bytes per attempt |
//! | `service_report_io_errors` | counter | responder write failures (file or socket) |
//!
//! Job outcome totals are **not** duplicated here: the
//! [`JobCounterSet`] stays the single source of truth and the snapshot
//! embeds it as its `"jobs"` object, so stats totals reconcile with
//! the final counters by construction.

use crate::flight::FlightRecorder;
use crate::ladder::Rung;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tossa_trace::metrics::{Gauge, Histogram, MetricCounter, Registry, RegistrySnapshot};
use tossa_trace::service::{JobCounter, JobCounterSet};

/// Label values of `service_job_latency_ns{rung=…}`, in [`Rung`] order.
pub const RUNG_KEYS: [&str; 3] = ["checked", "naive_fallback", "reject"];

/// Label values of `service_attempt_latency_ns{result=…}`.
pub const ATTEMPT_RESULT_KEYS: [&str; 4] = ["ok", "panic", "deadline", "alloc_budget"];

/// Label values of `service_stage_latency_ns{stage=…}`.
pub const STAGE_KEYS: [&str; 2] = ["compile", "verify"];

/// Index into the `attempt_latency_ns` family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptResult {
    /// The attempt produced a `CheckedOutcome` within budget.
    Ok,
    /// The attempt unwound and was contained.
    Panic,
    /// The attempt blew its wall-clock deadline.
    Deadline,
    /// The attempt exceeded its allocation budget.
    AllocBudget,
}

/// Index into the `stage_latency_ns` family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// The contained pipeline run (`run_checked` inside
    /// `catch_unwind`).
    Compile,
    /// The service's output-side differential seal.
    Verify,
}

/// Handles the [`crate::queue::BoundedQueue`] records through.
pub struct QueueMetrics {
    /// `service_queue_depth`.
    pub depth: Arc<Gauge>,
    /// `service_queue_wait_ns`.
    pub enqueue_wait_ns: Arc<Histogram>,
}

/// The service's full instrument set plus its flight recorder. One
/// instance per [`crate::service::CompileService`], shared by every
/// worker through an `Arc`.
pub struct ServiceMetrics {
    registry: Registry,
    started: Instant,
    /// `service_queue_depth`.
    pub queue_depth: Arc<Gauge>,
    /// `service_workers_busy`.
    pub workers_busy: Arc<Gauge>,
    /// `service_queue_wait_ns` — backpressure wait per push.
    pub queue_wait_ns: Arc<Histogram>,
    /// `service_queue_latency_ns` — admission to dequeue.
    pub queue_latency_ns: Arc<Histogram>,
    /// `service_job_latency_ns{rung=…}`, indexed per [`RUNG_KEYS`].
    pub job_latency_ns: [Arc<Histogram>; 3],
    /// `service_attempt_latency_ns{result=…}`, per
    /// [`ATTEMPT_RESULT_KEYS`].
    pub attempt_latency_ns: [Arc<Histogram>; 4],
    /// `service_stage_latency_ns{stage=…}`, per [`STAGE_KEYS`].
    pub stage_latency_ns: [Arc<Histogram>; 2],
    /// `service_fuel_used` — interpreter steps per completed attempt.
    pub fuel_used: Arc<Histogram>,
    /// `service_alloc_events` — heap events per attempt.
    pub alloc_events: Arc<Histogram>,
    /// `service_alloc_bytes` — heap bytes per attempt.
    pub alloc_bytes: Arc<Histogram>,
    /// `service_report_io_errors` — responder write failures.
    pub report_io_errors: Arc<MetricCounter>,
    /// The lifecycle-event ring.
    pub flight: FlightRecorder,
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

impl ServiceMetrics {
    /// Builds the closed instrument set.
    pub fn new() -> ServiceMetrics {
        let registry = Registry::new();
        let hist3 = |name, key, vals: [&'static str; 3]| {
            vals.map(|v| registry.histogram_with_label(name, key, v))
        };
        let hist4 = |name, key, vals: [&'static str; 4]| {
            vals.map(|v| registry.histogram_with_label(name, key, v))
        };
        let hist2 = |name, key, vals: [&'static str; 2]| {
            vals.map(|v| registry.histogram_with_label(name, key, v))
        };
        ServiceMetrics {
            started: Instant::now(),
            queue_depth: registry.gauge("service_queue_depth"),
            workers_busy: registry.gauge("service_workers_busy"),
            queue_wait_ns: registry.histogram("service_queue_wait_ns"),
            queue_latency_ns: registry.histogram("service_queue_latency_ns"),
            job_latency_ns: hist3("service_job_latency_ns", "rung", RUNG_KEYS),
            attempt_latency_ns: hist4("service_attempt_latency_ns", "result", ATTEMPT_RESULT_KEYS),
            stage_latency_ns: hist2("service_stage_latency_ns", "stage", STAGE_KEYS),
            fuel_used: registry.histogram("service_fuel_used"),
            alloc_events: registry.histogram("service_alloc_events"),
            alloc_bytes: registry.histogram("service_alloc_bytes"),
            report_io_errors: registry.counter("service_report_io_errors"),
            flight: FlightRecorder::default(),
            registry,
        }
    }

    /// The queue's instrument handles.
    pub fn queue_metrics(&self) -> QueueMetrics {
        QueueMetrics {
            depth: Arc::clone(&self.queue_depth),
            enqueue_wait_ns: Arc::clone(&self.queue_wait_ns),
        }
    }

    /// The job-latency histogram for a final rung.
    pub fn job_latency(&self, rung: Rung) -> &Histogram {
        let k = match rung {
            Rung::Checked => 0,
            Rung::NaiveFallback => 1,
            Rung::Reject => 2,
        };
        &self.job_latency_ns[k]
    }

    /// The attempt-latency histogram for how an attempt ended.
    pub fn attempt_latency(&self, result: AttemptResult) -> &Histogram {
        let k = match result {
            AttemptResult::Ok => 0,
            AttemptResult::Panic => 1,
            AttemptResult::Deadline => 2,
            AttemptResult::AllocBudget => 3,
        };
        &self.attempt_latency_ns[k]
    }

    /// The per-stage latency histogram.
    pub fn stage_latency(&self, stage: Stage) -> &Histogram {
        let k = match stage {
            Stage::Compile => 0,
            Stage::Verify => 1,
        };
        &self.stage_latency_ns[k]
    }

    /// Freezes every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Renders the live telemetry as one `tossa-service-stats/1` JSON
    /// line. `jobs` is the outcome-counter snapshot taken alongside —
    /// the stats document embeds it verbatim, so its totals reconcile
    /// with the final [`JobCounterSet`] by construction.
    pub fn stats_json(&self, jobs: &JobCounterSet) -> String {
        let mut out = String::from("{\"schema\": \"tossa-service-stats/1\"");
        let _ = write!(
            out,
            ", \"uptime_ns\": {}",
            self.started.elapsed().as_nanos() as u64
        );
        out.push_str(", \"jobs\": {");
        for (k, c) in JobCounter::ALL.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), jobs.get(*c));
        }
        out.push('}');
        let _ = write!(out, ", \"metrics\": {}", self.snapshot().to_json());
        let _ = write!(
            out,
            ", \"flight\": {{\"capacity\": {}, \"recorded\": {}, \"dropped\": {}}}",
            self.flight.capacity(),
            self.flight.recorded(),
            self.flight.dropped()
        );
        out.push('}');
        out
    }

    /// Renders the live telemetry in the Prometheus text exposition
    /// format under the `tossa_` namespace: one counter per
    /// [`JobCounter`] plus every registry instrument.
    pub fn prometheus(&self, jobs: &JobCounterSet) -> String {
        let mut out = String::new();
        for c in JobCounter::ALL {
            let _ = writeln!(out, "# TYPE tossa_{} counter", c.name());
            let _ = writeln!(out, "tossa_{} {}", c.name(), jobs.get(c));
        }
        out.push_str(&self.snapshot().prometheus_text("tossa"));
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_is_well_formed_and_schema_tagged() {
        let m = ServiceMetrics::new();
        m.queue_wait_ns.record(100);
        m.job_latency(Rung::Checked).record(5_000);
        m.flight.record(1, 0, "submit", "f");
        let mut jobs = JobCounterSet::new();
        jobs.add(JobCounter::JobsSubmitted, 1);
        let json = m.stats_json(&jobs);
        tossa_trace::validate_json(&json).expect("stats snapshot is well-formed JSON");
        assert!(json.contains("\"schema\": \"tossa-service-stats/1\""));
        assert!(json.contains("\"jobs_submitted\": 1"));
        assert!(
            json.contains("\"service_job_latency_ns{rung=\\\"checked\\\"}\"")
                || json.contains("service_job_latency_ns")
        );
    }

    #[test]
    fn prometheus_covers_jobs_and_instruments() {
        let m = ServiceMetrics::new();
        m.queue_depth.set(3);
        m.attempt_latency(AttemptResult::Panic).record(42);
        let jobs = JobCounterSet::new();
        let text = m.prometheus(&jobs);
        assert!(text.contains("# TYPE tossa_jobs_submitted counter"));
        assert!(text.contains("tossa_service_queue_depth 3"));
        assert!(text
            .contains("tossa_service_attempt_latency_ns_bucket{result=\"panic\",le=\"+Inf\"} 1"));
    }
}
