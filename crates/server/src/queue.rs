//! Bounded admission queue with backpressure and load-shedding.
//!
//! The service accepts work through a fixed-capacity queue. A producer
//! that finds it full blocks for a bounded *grace* period (backpressure
//! — a slow client is slowed down, not failed); if space never opens it
//! is **shed** with a structured refusal instead of growing memory
//! without bound. Consumers block until work arrives or the queue is
//! closed and drained.
//!
//! Mutex poisoning is deliberately absorbed (`into_inner`): a worker
//! that panicked while holding the lock left a `VecDeque` in a valid
//! state (push/pop are not interruptible mid-invariant here), and the
//! service's whole point is to survive worker panics.
//!
//! When built with [`BoundedQueue::with_metrics`], the queue keeps the
//! `service_queue_depth` gauge current and records every push's
//! backpressure wait (shed or accepted — exactly one record per push,
//! so the histogram count equals submitted + shed) into
//! `service_queue_wait_ns`.

use crate::metrics::QueueMetrics;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Result of an admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The job is in the queue.
    Accepted,
    /// The queue stayed full for the whole grace period (or is closed);
    /// the job was refused to protect the process.
    Shed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: blocking pop, grace-bounded push.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    metrics: Option<QueueMetrics>,
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
            metrics: None,
        }
    }

    /// A queue that keeps the depth gauge and enqueue-wait histogram
    /// in `metrics` current.
    pub fn with_metrics(cap: usize, metrics: QueueMetrics) -> BoundedQueue<T> {
        BoundedQueue {
            metrics: Some(metrics),
            ..BoundedQueue::new(cap)
        }
    }

    /// Tries to enqueue `item`, waiting up to `grace` for space.
    pub fn push(&self, item: T, grace: Duration) -> PushOutcome {
        let started = Instant::now();
        let outcome = self.push_inner(item, started + grace);
        if let Some(m) = &self.metrics {
            m.enqueue_wait_ns
                .record(started.elapsed().as_nanos() as u64);
            if outcome == PushOutcome::Accepted {
                m.depth.add(1);
            }
        }
        outcome
    }

    fn push_inner(&self, item: T, deadline: Instant) -> PushOutcome {
        let mut st = lock_ignoring_poison(&self.state);
        loop {
            if st.closed {
                return PushOutcome::Shed;
            }
            if st.items.len() < self.cap {
                st.items.push_back(item);
                self.not_empty.notify_one();
                return PushOutcome::Accepted;
            }
            let now = Instant::now();
            if now >= deadline {
                return PushOutcome::Shed;
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Dequeues the next item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock_ignoring_poison(&self.state);
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                drop(st);
                if let Some(m) = &self.metrics {
                    m.depth.add(-1);
                }
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: pending items still drain, new pushes shed,
    /// blocked consumers wake as the queue empties.
    pub fn close(&self) {
        let mut st = lock_ignoring_poison(&self.state);
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_after_grace() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1, Duration::ZERO), PushOutcome::Accepted);
        assert_eq!(q.push(2, Duration::ZERO), PushOutcome::Accepted);
        assert_eq!(
            q.push(3, Duration::from_millis(10)),
            PushOutcome::Shed,
            "third push must shed on a capacity-2 queue"
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn backpressure_admits_once_a_consumer_drains() {
        let q = Arc::new(BoundedQueue::new(1));
        assert_eq!(q.push(1u32, Duration::ZERO), PushOutcome::Accepted);
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.pop()
        });
        // Grace long enough to cover the consumer's delay: the push must
        // block, then land.
        assert_eq!(q.push(2, Duration::from_secs(5)), PushOutcome::Accepted);
        assert_eq!(consumer.join().unwrap(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1, Duration::ZERO);
        q.push(2, Duration::ZERO);
        q.close();
        assert_eq!(q.push(3, Duration::from_millis(5)), PushOutcome::Shed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+drained stays terminal");
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(4));
        let n = 200;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut accepted = 0u32;
                    for k in 0..n {
                        if q.push(p * n + k, Duration::from_secs(10)) == PushOutcome::Accepted {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let sent: u32 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let got: u32 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sent, 4 * n as u32);
        assert_eq!(got, sent);
    }
}
