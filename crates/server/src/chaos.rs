//! Service-level chaos: fault injection through the whole job loop.
//!
//! PR2/PR4 chaos corrupts the *pipeline* (IR and assignment
//! corruptions, each caught by a specific verifier). The service adds
//! the faults a pipeline cannot see because they happen around it:
//!
//! * [`ServiceFault::WorkerPanic`] — the worker panics mid-job (the
//!   containment boundary must absorb it);
//! * [`ServiceFault::DeadlineBlowout`] — the job overruns its
//!   wall-clock budget (the watchdog must mark it);
//! * [`ServiceFault::MalformedFrame`] — the client sends garbage (the
//!   protocol layer must refuse it structurally).
//!
//! Faults are drawn deterministically from `(seed, job id, attempt)`:
//! replaying a report's recorded seed reproduces the exact fault
//! schedule. Because the attempt number participates, a transient fault
//! can vanish on retry (the retry ladder gets exercised) while an
//! unlucky job can draw faults on every attempt and end up quarantined
//! (the poison path gets exercised) — both from one seed.

use tossa_core::chaos::{AllocCorruption, Corruption};
use tossa_ir::rng::SplitMix64;

/// A fault injected around the pipeline rather than into it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceFault {
    /// Panic inside the worker's contained region.
    WorkerPanic,
    /// Sleep past the job's wall-clock deadline.
    DeadlineBlowout,
    /// Corrupt the request frame before parsing.
    MalformedFrame,
}

impl ServiceFault {
    /// Stable snake_case key for reports.
    pub fn name(self) -> &'static str {
        match self {
            ServiceFault::WorkerPanic => "worker_panic",
            ServiceFault::DeadlineBlowout => "deadline_blowout",
            ServiceFault::MalformedFrame => "malformed_frame",
        }
    }
}

/// One drawn fault: either a service fault or a pass-through to the
/// core pipeline/allocation corruption classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Injected around the pipeline by the worker/admission layer.
    Service(ServiceFault),
    /// Injected into the pipeline via `CheckedOptions::chaos`.
    Pipeline(Corruption),
    /// Injected into the allocation stage via
    /// `CheckedOptions::alloc_chaos`.
    Alloc(AllocCorruption),
}

impl Fault {
    /// Stable class string recorded in reports (`service.worker_panic`,
    /// `pipeline.DropPhiArg`, `alloc.DropReload`, ...).
    pub fn class(&self) -> String {
        match self {
            Fault::Service(s) => format!("service.{}", s.name()),
            Fault::Pipeline(c) => format!("pipeline.{c:?}"),
            Fault::Alloc(c) => format!("alloc.{c:?}"),
        }
    }
}

/// Derives the per-job corruption-site seed handed to
/// `CheckedOptions::chaos_seed`. Reports record the derived value, so
/// replaying a failure needs only the report (not the service config).
pub fn site_seed(base: u64, job: u64) -> u64 {
    base ^ job.wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Deterministic fault schedule for a chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Base seed; recorded in every report for replay.
    pub seed: u64,
    /// Fault probability per attempt, in percent (0–100).
    pub rate_pct: u32,
}

impl ChaosConfig {
    /// Draws the fault (if any) for `(job, attempt)` under this config.
    /// Pure: equal arguments always draw equally.
    pub fn draw(&self, job: u64, attempt: u32) -> Option<Fault> {
        let mut rng = SplitMix64::seed_from_u64(
            self.seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt) << 17,
        );
        if rng.random_range(0u64..100) >= u64::from(self.rate_pct.min(100)) {
            return None;
        }
        // Weight the menu toward pipeline corruptions (the richer
        // taxonomy), with the three service faults well represented.
        const PIPELINE: &[Corruption] = &[
            Corruption::DropPhiArg,
            Corruption::DoubleDef,
            Corruption::UndefinedUse,
            Corruption::MergeInterferingWebs,
            Corruption::ReorderParallelCopy,
        ];
        const ALLOC: &[AllocCorruption] = &[
            AllocCorruption::AssignOverlappingInterval,
            AllocCorruption::ClobberPinnedResource,
            AllocCorruption::DropReload,
        ];
        const SERVICE: &[ServiceFault] = &[
            ServiceFault::WorkerPanic,
            ServiceFault::DeadlineBlowout,
            ServiceFault::MalformedFrame,
        ];
        let k = rng.random_range(0..(PIPELINE.len() + ALLOC.len() + SERVICE.len()));
        Some(if k < PIPELINE.len() {
            Fault::Pipeline(PIPELINE[k])
        } else if k < PIPELINE.len() + ALLOC.len() {
            Fault::Alloc(ALLOC[k - PIPELINE.len()])
        } else {
            Fault::Service(SERVICE[k - PIPELINE.len() - ALLOC.len()])
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_attempt_sensitive() {
        let cfg = ChaosConfig {
            seed: 99,
            rate_pct: 100,
        };
        for job in 0..50u64 {
            assert_eq!(cfg.draw(job, 1), cfg.draw(job, 1), "job {job}");
        }
        // Attempt participates: across many jobs, retries must not all
        // redraw the identical fault (that would make every transient
        // fault permanent).
        let differs = (0..50u64).any(|j| cfg.draw(j, 1) != cfg.draw(j, 2));
        assert!(differs, "attempt number never changed the draw");
    }

    #[test]
    fn rate_zero_never_draws_and_full_rate_covers_the_menu() {
        let off = ChaosConfig {
            seed: 1,
            rate_pct: 0,
        };
        assert!((0..100u64).all(|j| off.draw(j, 1).is_none()));
        let on = ChaosConfig {
            seed: 1,
            rate_pct: 100,
        };
        let classes: std::collections::HashSet<String> = (0..500u64)
            .filter_map(|j| on.draw(j, 1))
            .map(|f| f.class())
            .collect();
        assert!(
            classes.len() >= 8,
            "500 full-rate draws covered only {classes:?}"
        );
        assert!(classes.iter().any(|c| c.starts_with("service.")));
        assert!(classes.iter().any(|c| c.starts_with("pipeline.")));
        assert!(classes.iter().any(|c| c.starts_with("alloc.")));
    }
}
