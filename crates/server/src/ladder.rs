//! The three-rung degradation ladder.
//!
//! Every job enters at [`Rung::Checked`] (the fully-guarded pipeline of
//! `tossa_bench::checked`). A failure never aborts the job outright: it
//! *descends* exactly one rung, and the transition is recorded with a
//! provenance-style cause string, so a report reads like a decision
//! record ("left Checked because `verify.divergence`; left
//! NaiveFallback because the fallback also diverged").
//!
//! The ladder's structural invariant — enforced by construction here
//! and asserted over every report by the chaos soak — is that
//! transitions only ever go from rung *k* to rung *k + 1*: a job cannot
//! jump from the checked pipeline straight to a reject without the
//! fallback having been tried (or its failure recorded).

use std::fmt;

/// One rung of the degradation ladder, ordered best to worst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The guarded pipeline: per-pass verification plus differential
    /// execution, then register allocation.
    Checked,
    /// The degraded result: the naive out-of-SSA translation (or, for
    /// an allocation-stage failure, the verified unallocated pipeline
    /// output), still differentially verified against the source.
    NaiveFallback,
    /// No usable code: the job ends with a structured error only.
    Reject,
}

impl Rung {
    /// Stable snake_case key used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Checked => "checked",
            Rung::NaiveFallback => "naive_fallback",
            Rung::Reject => "reject",
        }
    }

    /// The next rung down, or `None` from the bottom.
    pub fn next(self) -> Option<Rung> {
        match self {
            Rung::Checked => Some(Rung::NaiveFallback),
            Rung::NaiveFallback => Some(Rung::Reject),
            Rung::Reject => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded transition: the job left `from` for `to` because of
/// `cause` (a stable error class key, optionally suffixed with detail,
/// e.g. `verify.divergence` or `budget.fuel`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LadderStep {
    /// Rung the job was on.
    pub from: Rung,
    /// Rung the job descended to.
    pub to: Rung,
    /// Why — an error class key plus optional detail.
    pub cause: String,
}

/// The per-job ladder state: current rung plus the transition record.
#[derive(Clone, Debug, Default)]
pub struct Ladder {
    steps: Vec<LadderStep>,
}

impl Ladder {
    /// A fresh ladder at [`Rung::Checked`].
    pub fn new() -> Ladder {
        Ladder::default()
    }

    /// The rung the job is currently on.
    pub fn current(&self) -> Rung {
        self.steps.last().map_or(Rung::Checked, |s| s.to)
    }

    /// Descends exactly one rung, recording `cause`. Returns the new
    /// rung, or `None` when already at the bottom (the caller is trying
    /// to degrade a reject — a service bug the soak would surface, so
    /// nothing is recorded).
    pub fn descend(&mut self, cause: impl Into<String>) -> Option<Rung> {
        let from = self.current();
        let to = from.next()?;
        self.steps.push(LadderStep {
            from,
            to,
            cause: cause.into(),
        });
        Some(to)
    }

    /// The recorded transitions, in order.
    pub fn steps(&self) -> &[LadderStep] {
        &self.steps
    }

    /// Consumes the ladder into its transition record.
    pub fn into_steps(self) -> Vec<LadderStep> {
        self.steps
    }
}

/// Checks the no-skipped-rung invariant over a transition record: the
/// record starts at [`Rung::Checked`], every step goes from its rung to
/// the immediately next one, and consecutive steps chain. An empty
/// record (a job that never degraded, or was refused at admission
/// before entering the ladder) is trivially valid.
pub fn steps_are_contiguous(steps: &[LadderStep]) -> bool {
    let mut at = Rung::Checked;
    for s in steps {
        if s.from != at || s.to != s.from.next().unwrap_or(s.from) {
            return false;
        }
        at = s.to;
    }
    true
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn ladder_descends_one_rung_at_a_time() {
        let mut l = Ladder::new();
        assert_eq!(l.current(), Rung::Checked);
        assert_eq!(l.descend("verify.divergence"), Some(Rung::NaiveFallback));
        assert_eq!(l.current(), Rung::NaiveFallback);
        assert_eq!(l.descend("verify.trap"), Some(Rung::Reject));
        assert_eq!(l.current(), Rung::Reject);
        assert_eq!(l.descend("anything"), None, "no rung below reject");
        assert_eq!(l.steps().len(), 2);
        assert!(steps_are_contiguous(l.steps()));
    }

    #[test]
    fn skipping_a_rung_is_detected() {
        let skipped = [LadderStep {
            from: Rung::Checked,
            to: Rung::Reject,
            cause: "bogus".into(),
        }];
        assert!(!steps_are_contiguous(&skipped));
        let wrong_start = [LadderStep {
            from: Rung::NaiveFallback,
            to: Rung::Reject,
            cause: "bogus".into(),
        }];
        assert!(!steps_are_contiguous(&wrong_start));
        assert!(steps_are_contiguous(&[]));
    }
}
