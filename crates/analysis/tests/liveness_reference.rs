//! Validates the dataflow liveness against an independent, path-based
//! reference: a variable is live at a point iff some CFG path from that
//! point reaches a use before any redefinition. The reference is a plain
//! BFS over (block, position) program points, computed per variable —
//! nothing shared with the fixpoint implementation.

use std::collections::HashSet;
use tossa_analysis::Liveness;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Var};
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;
use tossa_ir::rng::SplitMix64;
use tossa_ir::Function;

/// Path-based liveness: is `v` live at the entry of `b` (before the
/// block's first instruction)? Only valid for φ-free functions.
fn ref_live_in(f: &Function, b: Block, v: Var) -> bool {
    // BFS over points (block, index) starting at (b, 0).
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut work = vec![(b, 0usize)];
    while let Some((blk, pos)) = work.pop() {
        if !seen.insert((blk.index(), pos)) {
            continue;
        }
        let insts: Vec<_> = f.block_insts(blk).collect();
        if pos >= insts.len() {
            for &s in f.succs(blk) {
                work.push((s, 0));
            }
            continue;
        }
        let inst = f.inst(insts[pos]);
        if inst.uses.iter().any(|u| u.var == v) {
            return true;
        }
        if inst.defs.iter().any(|d| d.var == v) {
            continue; // killed along this path
        }
        work.push((blk, pos + 1));
    }
    false
}

fn check_function(f: &Function) {
    assert!(
        f.all_insts().all(|(_, i)| !f.inst(i).is_phi()),
        "reference only handles φ-free code"
    );
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    let reachable = tossa_ir::cfg::reachable(f);
    for b in f.blocks() {
        if !reachable[b.index()] {
            continue;
        }
        for v in f.vars() {
            assert_eq!(
                live.live_in(b).contains(v),
                ref_live_in(f, b, v),
                "live_in({b}, {v}) mismatch in {}",
                f.name
            );
        }
    }
}

#[test]
fn handcrafted_cfgs_match_reference() {
    let texts = [
        // Straight line.
        "func @a {\nentry:\n  %x = make 1\n  %y = addi %x, 1\n  ret %y\n}",
        // Diamond with a variable live through one side only.
        "func @b {
entry:
  %c, %x = input
  br %c, l, r
l:
  %y = addi %x, 1
  jump m
r:
  %y = make 0
  jump m
m:
  ret %y
}",
        // Loop-carried variable.
        "func @c {
entry:
  %n = input
  %i = make 0
  jump head
head:
  %cc = cmplt %i, %n
  br %cc, body, exit
body:
  %i = addi %i, 1
  jump head
exit:
  ret %i
}",
        // Variable dead in a branch but redefined after the join.
        "func @d {
entry:
  %c = input
  %x = make 5
  br %c, l, r
l:
  %u = addi %x, 1
  jump m
r:
  jump m
m:
  %x = make 9
  ret %x
}",
        // Nested loops with a value crossing both.
        "func @e {
entry:
  %n = input
  %acc = make 0
  %i = make 0
  jump oh
oh:
  %c1 = cmplt %i, %n
  br %c1, ob, done
ob:
  %j = make 0
  jump ih
ih:
  %c2 = cmplt %j, %i
  br %c2, ib, ol
ib:
  %acc = add %acc, %j
  %j = addi %j, 1
  jump ih
ol:
  %i = addi %i, 1
  jump oh
done:
  ret %acc
}",
    ];
    for text in texts {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        check_function(&f);
    }
}

/// A tiny local generator of φ-free structured programs (independent of
/// the bench crate) for randomized cross-checking.
fn random_function(seed: u64) -> Function {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let pool = 5;
    let mut text = String::from("func @rand {\nentry:\n  %p0, %p1 = input\n");
    for i in 2..pool {
        text.push_str(&format!("  %p{i} = make {}\n", i * 7));
    }
    let mut label = 0;
    let mut emit_body = |text: &mut String, rng: &mut SplitMix64, depth: usize| {
        // Closure-free recursion via explicit stack of (depth, stage).
        fn body(
            text: &mut String,
            rng: &mut SplitMix64,
            depth: usize,
            label: &mut usize,
            pool: usize,
        ) {
            for _ in 0..3 {
                let choice = rng.random_range(0..10);
                let d = rng.random_range(0..pool);
                let a = rng.random_range(0..pool);
                let b = rng.random_range(0..pool);
                if choice < 6 || depth == 0 {
                    let op = ["add", "sub", "xor", "and"][rng.random_range(0..4)];
                    text.push_str(&format!("  %p{d} = {op} %p{a}, %p{b}\n"));
                } else {
                    *label += 1;
                    let l = *label;
                    text.push_str(&format!("  %c{l} = cmplt %p{a}, %p{b}\n"));
                    text.push_str(&format!("  br %c{l}, t{l}, e{l}\nt{l}:\n"));
                    body(text, rng, depth - 1, label, pool);
                    text.push_str(&format!("  jump j{l}\ne{l}:\n"));
                    body(text, rng, depth - 1, label, pool);
                    text.push_str(&format!("  jump j{l}\nj{l}:\n"));
                }
            }
        }
        body(text, rng, depth, &mut label, pool);
    };
    emit_body(&mut text, &mut rng, 2);
    text.push_str("  ret %p0, %p3\n}\n");
    let f = parse_function(&text, &Machine::dsp32()).unwrap();
    f.validate().unwrap();
    f
}

#[test]
fn random_cfgs_match_reference() {
    for seed in 0..25 {
        check_function(&random_function(seed));
    }
}

/// Satellite check for the worklist rewrite: on random CFGs *with φs*
/// (the path-based reference above can't model them), the worklist
/// liveness must be set-for-set identical to the old round-robin
/// fixpoint, which is kept as `Liveness::compute_reference`.
#[test]
fn worklist_matches_naive_fixpoint_on_random_ssa_cfgs() {
    let mut total_phis = 0usize;
    for seed in 0..40 {
        let mut f = random_function(seed);
        tossa_ssa::to_ssa(&mut f);
        f.validate().unwrap();
        total_phis += f.all_insts().filter(|&(_, i)| f.inst(i).is_phi()).count();
        let cfg = Cfg::compute(&f);
        let fast = Liveness::compute(&f, &cfg);
        let naive = Liveness::compute_reference(&f, &cfg);
        for b in f.blocks() {
            for v in f.vars() {
                assert_eq!(
                    fast.live_in(b).contains(v),
                    naive.live_in(b).contains(v),
                    "live_in({b}, {v}) mismatch on seed {seed}"
                );
                assert_eq!(
                    fast.live_out(b).contains(v),
                    naive.live_out(b).contains(v),
                    "live_out({b}, {v}) mismatch on seed {seed}"
                );
            }
        }
    }
    // The generator must actually exercise the φ conventions.
    assert!(total_phis > 0, "no φs generated across all seeds");
}
