//! Integration tests for the `AnalysisCache` invalidation contract:
//! mutating a function without telling the cache is a bug that debug
//! builds catch via the structural fingerprint, and after a proper
//! `invalidate()` the cache must agree with a fresh computation.

use tossa_analysis::{AnalysisCache, Liveness};
use tossa_ir::cfg::Cfg;
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;
use tossa_ir::Function;

fn sample() -> Function {
    let f = parse_function(
        "func @s {
entry:
  %a, %b = input
  %c = add %a, %b
  br %c, l, r
l:
  %d = addi %a, 1
  jump m
r:
  %d = add %b, %c
  jump m
m:
  ret %d
}",
        &Machine::dsp32(),
    )
    .unwrap();
    f.validate().unwrap();
    f
}

/// Rewire the first non-φ instruction's first use to a different
/// variable — a structural change that alters liveness.
fn mutate(f: &mut Function) {
    let (target, old) = f
        .all_insts()
        .find(|&(_, i)| !f.inst(i).uses.is_empty())
        .map(|(_, i)| (i, f.inst(i).uses[0].var))
        .unwrap();
    let other = f.vars().find(|&v| v != old).unwrap();
    f.inst_mut(target).uses[0].var = other;
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "AnalysisCache")]
fn mutation_without_invalidation_panics_in_debug() {
    let mut f = sample();
    let mut cache = AnalysisCache::new();
    let _ = cache.liveness(&f);
    mutate(&mut f);
    // Stale access: fingerprint no longer matches the epoch's first
    // access, so the debug revision check must panic.
    let _ = cache.liveness(&f);
}

#[test]
fn invalidation_matches_fresh_computation() {
    let mut f = sample();
    let mut cache = AnalysisCache::new();
    let before = cache.revision();
    let _ = cache.liveness(&f);

    mutate(&mut f);
    cache.invalidate();
    assert!(cache.revision() > before, "invalidate must bump revision");

    let cached = cache.liveness(&f);
    let fresh_cfg = Cfg::compute(&f);
    let fresh = Liveness::compute(&f, &fresh_cfg);
    for b in f.blocks() {
        for v in f.vars() {
            assert_eq!(
                cached.live_in(b).contains(v),
                fresh.live_in(b).contains(v),
                "live_in({b}, {v}) stale after invalidate"
            );
            assert_eq!(
                cached.live_out(b).contains(v),
                fresh.live_out(b).contains(v),
                "live_out({b}, {v}) stale after invalidate"
            );
        }
    }
    // Repeated access must hand back the same memoized Rc.
    let again = cache.liveness(&f);
    assert!(std::rc::Rc::ptr_eq(&cached, &again));
}
