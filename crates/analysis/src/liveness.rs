//! Liveness analysis with the paper's φ conventions (§3.2, Class 2):
//!
//! * a φ instruction "does not occur where it textually appears, but at
//!   the end of each predecessor basic block instead";
//! * a φ *use* flowing from block `C` is live up to the end of `C` but is
//!   **dead at the exit of `C`** (it does not appear in `live_out(C)`);
//! * a φ *definition* is live-in to its block (it was written at the end
//!   of every predecessor).
//!
//! The same dataflow works for non-SSA code (no φs, multiple defs per
//! variable), which the Chaitin-style coalescing baseline relies on.

use crate::bitset::{pooled, recycle, BitSet};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, EntityVec, Inst, Var};
use tossa_ir::Function;

/// Per-block live-in/live-out sets.
///
/// Rows are drawn from the thread-local bitset pool and recycled on
/// drop, so each invalidate/recompute cycle of the analysis cache
/// reuses the previous epoch's buffers instead of reallocating one
/// `Vec<u64>` per block.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: EntityVec<Block, BitSet<Var>>,
    live_out: EntityVec<Block, BitSet<Var>>,
}

impl Drop for Liveness {
    fn drop(&mut self) {
        for s in std::mem::take(&mut self.live_in).into_values() {
            recycle(s);
        }
        for s in std::mem::take(&mut self.live_out).into_values() {
            recycle(s);
        }
    }
}

/// `nb` pooled empty rows of capacity `nv`.
fn pooled_rows(nb: usize, nv: usize) -> EntityVec<Block, BitSet<Var>> {
    let mut rows = EntityVec::new();
    for _ in 0..nb {
        rows.push(pooled(nv));
    }
    rows
}

fn recycle_rows(rows: EntityVec<Block, BitSet<Var>>) {
    for s in rows.into_values() {
        recycle(s);
    }
}

impl Liveness {
    /// Computes liveness with a postorder-seeded worklist.
    ///
    /// Per block, three masks are precomputed once — upward-exposed uses,
    /// non-φ defs, and the φ arguments read at the block's end — plus the
    /// φ-def mask each successor subtracts. The fixpoint loop is then
    /// pure word-level bitset arithmetic driven by `union_with_minus`'s
    /// changed-bit: a block re-enters the worklist only when a successor's
    /// live-in actually grew, instead of the whole-CFG round-robin sweeps
    /// (with per-edge set clones and φ-def `remove`s) the reference
    /// implementation does.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let nb = f.num_blocks();
        let nv = f.num_vars();
        let mut live_in = pooled_rows(nb, nv);
        let mut live_out = pooled_rows(nb, nv);

        // --- Precomputation (one pass over the instructions). ---
        // All four masks are pooled scratch, recycled before returning.
        // φ defs of each block (subtracted from its live-in by preds).
        let mut phi_defs = pooled_rows(nb, nv);
        // φ arguments read at the *end* of each block by successor φs.
        let mut phi_uses = pooled_rows(nb, nv);
        // Non-φ defs and upward-exposed uses of each block.
        let mut def_set = pooled_rows(nb, nv);
        let mut use_set = pooled_rows(nb, nv);
        for b in f.blocks() {
            for i in f.block_insts(b) {
                let inst = f.inst(i);
                if inst.is_phi() {
                    phi_defs[b].insert(inst.defs[0].var);
                    for (k, u) in inst.uses.iter().enumerate() {
                        phi_uses[inst.phi_preds[k]].insert(u.var);
                    }
                    continue;
                }
                // Uses read before defs are written: `%x = addi %x, 1`
                // leaves `%x` upward-exposed.
                for u in inst.uses {
                    if !def_set[b].contains(u.var) {
                        use_set[b].insert(u.var);
                    }
                }
                for d in inst.defs {
                    def_set[b].insert(d.var);
                }
            }
        }

        // Seed live-in with the block-local contribution:
        // use(b) ∪ (φ-uses-at-end(b) \ def(b)).
        for b in f.blocks() {
            live_in[b].union_with(&use_set[b]);
            live_in[b].union_with_minus(&phi_uses[b], &def_set[b]);
        }

        // --- Worklist on postorder (successors first for backward flow).
        // Unreachable blocks are appended so the result matches the
        // reference fixpoint set-for-set on every block.
        let mut on_list = vec![false; nb];
        let mut in_order = vec![false; nb];
        let mut order: Vec<Block> = cfg.postorder().collect();
        for &b in &order {
            in_order[b.index()] = true;
        }
        for b in f.blocks() {
            if !in_order[b.index()] {
                order.push(b);
            }
        }
        let mut work: std::collections::VecDeque<Block> = order.into_iter().collect();
        for &b in &work {
            on_list[b.index()] = true;
        }
        let mut pops: u64 = 0;
        while let Some(b) = work.pop_front() {
            pops += 1;
            on_list[b.index()] = false;
            // live_out(b) |= live_in(s) \ phi_defs(s) for each successor.
            // All sets grow monotonically, so in-place union reaches the
            // same fixpoint as recomputation from scratch.
            let mut out_grew = false;
            for &s in cfg.succs(b) {
                let (out_b, in_s) = (&mut live_out[b], &live_in[s]);
                out_grew |= out_b.union_with_minus(in_s, &phi_defs[s]);
            }
            if !out_grew {
                continue;
            }
            // live_in(b) |= live_out(b) \ def(b); the block-local part was
            // seeded above and never changes.
            let (in_b, out_b) = (&mut live_in[b], &live_out[b]);
            if in_b.union_with_minus(out_b, &def_set[b]) {
                for &p in cfg.preds(b) {
                    if !on_list[p.index()] {
                        on_list[p.index()] = true;
                        work.push_back(p);
                    }
                }
            }
        }
        tossa_trace::count(tossa_trace::Counter::LivenessIterations, pops);
        recycle_rows(phi_defs);
        recycle_rows(phi_uses);
        recycle_rows(def_set);
        recycle_rows(use_set);
        Liveness { live_in, live_out }
    }

    /// The original round-robin backward fixpoint, kept verbatim as an
    /// independent reference implementation for equivalence testing of
    /// the worklist algorithm. Not for production use.
    #[doc(hidden)]
    pub fn compute_reference(f: &Function, cfg: &Cfg) -> Liveness {
        let nb = f.num_blocks();
        let nv = f.num_vars();
        let mut live_in: EntityVec<Block, BitSet<Var>> = EntityVec::filled(nb, BitSet::new(nv));
        let mut live_out: EntityVec<Block, BitSet<Var>> = EntityVec::filled(nb, BitSet::new(nv));

        let mut changed = true;
        while changed {
            changed = false;
            // Backward iteration converges faster on postorder, but any
            // order is correct; block creation order keeps this simple.
            for b in f.blocks().rev_vec() {
                // live_out(b) = U_s (live_in(s) \ phi_defs(s))
                let mut out = BitSet::new(nv);
                for &s in cfg.succs(b) {
                    let mut contrib = live_in[s].clone();
                    for phi in f.phis(s) {
                        contrib.remove(f.inst(phi).defs[0].var);
                    }
                    out.union_with(&contrib);
                }
                // In-block transfer starts from the values read by the
                // successors' φs at our end, plus live_out.
                let mut cursor = out.clone();
                for (_, arg) in phi_uses_at_end(f, b) {
                    cursor.insert(arg);
                }
                transfer_block(f, b, &mut cursor);
                if out != live_out[b] {
                    live_out[b] = out;
                    changed = true;
                }
                if cursor != live_in[b] {
                    live_in[b] = cursor;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live at the entry of `b` (φ definitions of `b` included when
    /// they are used at or after `b`).
    pub fn live_in(&self, b: Block) -> &BitSet<Var> {
        &self.live_in[b]
    }

    /// Values live at the exit of `b`. φ uses flowing out of `b` are *not*
    /// included (paper convention); see [`Liveness::live_exit`].
    pub fn live_out(&self, b: Block) -> &BitSet<Var> {
        &self.live_out[b]
    }

    /// Values live at the end of `b` *including* the arguments read by the
    /// successors' φs (the starting point for in-block backward scans).
    pub fn live_exit(&self, f: &Function, b: Block) -> BitSet<Var> {
        let mut s = self.live_out[b].clone();
        for (_, arg) in phi_uses_at_end(f, b) {
            s.insert(arg);
        }
        s
    }

    /// [`Liveness::live_exit`] into a caller-owned cursor, reusing its
    /// buffer. Lets per-block backward scans (interference construction,
    /// live-at-defs) run a whole function on one allocation.
    pub fn live_exit_into(&self, f: &Function, b: Block, cursor: &mut BitSet<Var>) {
        cursor.clone_from(&self.live_out[b]);
        for &s in f.succs(b) {
            for phi in f.phis(s) {
                if let Some(op) = f.inst(phi).phi_arg_for(b) {
                    cursor.insert(op.var);
                }
            }
        }
    }
}

/// Applies the backward in-block transfer to `cursor` (which enters as
/// the live-at-end set and leaves as live-at-entry). φs of `b` itself are
/// skipped: their defs happen at the end of predecessors and their uses
/// at the end of predecessors too.
fn transfer_block(f: &Function, b: Block, cursor: &mut BitSet<Var>) {
    for &i in f.block(b).insts.iter().rev() {
        let inst = f.inst(i);
        if inst.is_phi() {
            continue;
        }
        for d in inst.defs {
            cursor.remove(d.var);
        }
        for u in inst.uses {
            cursor.insert(u.var);
        }
    }
}

/// The φ uses that semantically occur at the end of `b`: pairs of
/// `(phi inst, argument var)` for every φ of every successor of `b` whose
/// argument flows in from `b`.
pub fn phi_uses_at_end(f: &Function, b: Block) -> Vec<(Inst, Var)> {
    let mut out = Vec::new();
    for &s in f.succs(b) {
        for phi in f.phis(s) {
            if let Some(op) = f.inst(phi).phi_arg_for(b) {
                out.push((phi, op.var));
            }
        }
    }
    out
}

/// The unique definition site of each variable, for SSA-form functions.
#[derive(Clone, Debug)]
pub struct DefMap {
    sites: EntityVec<Var, Option<DefSite>>,
}

/// Where a variable is defined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// Defining block.
    pub block: Block,
    /// Defining instruction.
    pub inst: Inst,
    /// Position of the instruction within the block.
    pub pos: usize,
    /// Whether the definition is a φ.
    pub is_phi: bool,
}

impl DefMap {
    /// Records the first definition of every variable. For SSA functions
    /// this is *the* definition.
    pub fn compute(f: &Function) -> DefMap {
        let mut sites: EntityVec<Var, Option<DefSite>> = EntityVec::filled(f.num_vars(), None);
        for b in f.blocks() {
            for (pos, i) in f.block_insts(b).enumerate() {
                let inst = f.inst(i);
                for d in inst.defs {
                    if sites[d.var].is_none() {
                        sites[d.var] = Some(DefSite {
                            block: b,
                            inst: i,
                            pos,
                            is_phi: inst.is_phi(),
                        });
                    }
                }
            }
        }
        DefMap { sites }
    }

    /// The definition site of `v`, if it has one.
    pub fn site(&self, v: Var) -> Option<DefSite> {
        self.sites.get(v).copied().flatten()
    }
}

/// For every variable `v`, the set of variables live immediately *after*
/// the definition of `v` — the exact interference oracle: when
/// `def(x)` dominates `def(y)`, `x` and `y` have overlapping live ranges
/// iff `x` is live after `def(y)`.
///
/// For a φ definition the point "after the def" is the entry of its block
/// (after the parallel copies of all incoming edges), so the set is the
/// block's live-in.
#[derive(Clone, Debug)]
pub struct LiveAtDefs {
    after: EntityVec<Var, Option<BitSet<Var>>>,
}

impl Drop for LiveAtDefs {
    fn drop(&mut self) {
        for s in std::mem::take(&mut self.after).into_values().flatten() {
            recycle(s);
        }
    }
}

impl LiveAtDefs {
    /// Computes the live-after-def set of every defined variable with one
    /// backward scan per block. The per-def snapshots and the scan cursor
    /// come from the bitset pool; snapshots go back to it when the result
    /// is dropped.
    pub fn compute(f: &Function, live: &Liveness, defs: &DefMap) -> LiveAtDefs {
        let nv = f.num_vars();
        let mut after: EntityVec<Var, Option<BitSet<Var>>> = EntityVec::filled(nv, None);
        let mut cursor: BitSet<Var> = pooled(nv);
        let snapshot = |src: &BitSet<Var>| {
            let mut s = pooled(nv);
            s.clone_from(src);
            s
        };
        for b in f.blocks() {
            live.live_exit_into(f, b, &mut cursor);
            for (pos, &i) in f.block(b).insts.iter().enumerate().rev() {
                let inst = f.inst(i);
                if inst.is_phi() {
                    continue;
                }
                // `cursor` is currently the live set after inst i.
                for d in inst.defs {
                    if defs.site(d.var).map(|s| (s.inst, s.pos)) == Some((i, pos)) {
                        after[d.var] = Some(snapshot(&cursor));
                    }
                }
                for d in inst.defs {
                    cursor.remove(d.var);
                }
                for u in inst.uses {
                    cursor.insert(u.var);
                }
            }
            // φ defs: live-after is the block's live-in.
            for phi in f.phis(b) {
                let v = f.inst(phi).defs[0].var;
                if defs.site(v).map(|s| s.inst) == Some(phi) {
                    after[v] = Some(snapshot(live.live_in(b)));
                }
            }
        }
        recycle(cursor);
        LiveAtDefs { after }
    }

    /// The variables live just after the definition of `v` (`None` if `v`
    /// has no definition).
    pub fn after_def(&self, v: Var) -> Option<&BitSet<Var>> {
        self.after.get(v).and_then(|o| o.as_ref())
    }
}

trait RevBlocks {
    fn rev_vec(self) -> Vec<Block>;
}

impl<I: Iterator<Item = Block>> RevBlocks for I {
    fn rev_vec(self) -> Vec<Block> {
        let mut v: Vec<Block> = self.collect();
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn setup(text: &str) -> (Function, Cfg) {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        let cfg = Cfg::compute(&f);
        (f, cfg)
    }

    fn var(f: &Function, name: &str) -> Var {
        f.vars()
            .find(|&v| f.var(v).name == name)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn straightline_liveness() {
        let (f, cfg) = setup(
            "func @s {
entry:
  %a, %b = input
  %c = add %a, %b
  %d = add %c, %a
  ret %d
}",
        );
        let live = Liveness::compute(&f, &cfg);
        assert!(live.live_in(f.entry).is_empty());
        assert!(live.live_out(f.entry).is_empty());
        let defs = DefMap::compute(&f);
        let lad = LiveAtDefs::compute(&f, &live, &defs);
        // After def of c: a is still live (used by d), b is dead.
        let after_c = lad.after_def(var(&f, "c")).unwrap();
        assert!(after_c.contains(var(&f, "a")));
        assert!(!after_c.contains(var(&f, "b")));
        assert!(after_c.contains(var(&f, "c")));
        // After def of d: only d.
        let after_d = lad.after_def(var(&f, "d")).unwrap();
        assert_eq!(after_d.count(), 1);
    }

    #[test]
    fn phi_use_not_live_out_phi_def_live_in() {
        let (f, cfg) = setup(
            "func @l {
entry:
  %z = make 0
  %n = input
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %i2 = addi %i, 1
  jump head
exit:
  ret %i
}",
        );
        let live = Liveness::compute(&f, &cfg);
        let (entry, head, body) = (f.entry, Block::new(1), Block::new(2));
        let z = var(&f, "z");
        let i = var(&f, "i");
        let i2 = var(&f, "i2");
        // z is a φ use from entry: live inside entry, dead at its exit.
        assert!(!live.live_out(entry).contains(z));
        assert!(live.live_exit(&f, entry).contains(z));
        // φ def i is live-in to head.
        assert!(live.live_in(head).contains(i));
        // i2 is a φ use from body: dead at body exit, but live-in to body?
        // It is defined in body, so not live-in.
        assert!(!live.live_out(body).contains(i2));
        assert!(!live.live_in(body).contains(i2));
        assert!(live.live_exit(&f, body).contains(i2));
        // n flows around the loop.
        let n = var(&f, "n");
        assert!(live.live_out(entry).contains(n));
        assert!(live.live_in(head).contains(n));
        assert!(live.live_out(body).contains(n));
    }

    #[test]
    fn phi_input_code_matches_paper_example() {
        // Fig. 5(c)-like shape: x2 pinned case — check i (φ def) live
        // after def of i2 (they interfere: lost-copy shape).
        let (f, cfg) = setup(
            "func @fig {
entry:
  %z = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i, %i2
  br %c, body, exit
body:
  jump head
exit:
  ret %i
}",
        );
        let live = Liveness::compute(&f, &cfg);
        let defs = DefMap::compute(&f);
        let lad = LiveAtDefs::compute(&f, &live, &defs);
        let i = var(&f, "i");
        let i2 = var(&f, "i2");
        // i is used by cmplt after i2's def, so live after def(i2).
        assert!(lad.after_def(i2).unwrap().contains(i));
        // after def of φ i = live_in(head) contains i.
        assert!(lad.after_def(i).unwrap().contains(i));
    }

    #[test]
    fn non_ssa_multiple_defs() {
        let (f, cfg) = setup(
            "func @m {
entry:
  %a = make 1
  %x = mov %a
  %x = addi %x, 2
  ret %x
}",
        );
        let live = Liveness::compute(&f, &cfg);
        assert!(live.live_in(f.entry).is_empty());
        let defs = DefMap::compute(&f);
        // DefMap records the first def.
        let x = var(&f, "x");
        assert_eq!(defs.site(x).unwrap().pos, 1);
    }

    #[test]
    fn phi_uses_at_end_lists_edge_args() {
        let (f, _) = setup(
            "func @p {
entry:
  %a = make 1
  %b = make 2
  jump m
m:
  %x = phi [entry: %a]
  %y = phi [entry: %b]
  ret %x, %y
}",
        );
        let uses = phi_uses_at_end(&f, f.entry);
        let names: Vec<&str> = uses.iter().map(|&(_, v)| f.var(v).name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
