//! # tossa-analysis — CFG analyses
//!
//! Program analyses shared by SSA construction, the out-of-SSA
//! translators, and the coalescing algorithms:
//!
//! * [`bitset::BitSet`] — dense typed bit sets;
//! * [`domtree::DomTree`] — Cooper–Harvey–Kennedy dominators (plus a
//!   naive O(n²) reference used by tests);
//! * [`domfront::DomFrontiers`] — (iterated) dominance frontiers;
//! * [`loops::LoopInfo`] — natural loops and the inner-to-outer traversal
//!   of the paper's Algorithm 1;
//! * [`liveness`] — liveness with the paper's φ conventions, definition
//!   sites, and the exact live-after-def interference oracle;
//! * [`interference::InterferenceGraph`] — classic non-SSA interference
//!   with Chaitin's move exception and cheap vertex merging.

#![warn(missing_docs)]

pub mod bitset;
pub mod cache;
pub mod domfront;
pub mod domtree;
pub mod interference;
pub mod liveness;
pub mod loops;

pub use bitset::BitSet;
pub use cache::{AnalysisCache, StaleAnalysis};
pub use domfront::DomFrontiers;
pub use domtree::DomTree;
pub use interference::InterferenceGraph;
pub use liveness::{DefMap, DefSite, LiveAtDefs, Liveness};
pub use loops::LoopInfo;
