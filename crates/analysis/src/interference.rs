//! Classic interference graph over (possibly non-SSA) code, with the
//! move-exception of Chaitin's coalescing and an O(1)-amortized vertex
//! merge, as used by the aggressive "repeated coalescing" baseline
//! (paper §5, `Coalescing`).

use crate::bitset::{pooled, recycle, BitSet};
use crate::liveness::Liveness;
use std::collections::HashSet;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::Var;
use tossa_ir::{Function, Opcode};

/// An undirected interference graph over variables.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    adj: Vec<HashSet<Var>>,
}

impl InterferenceGraph {
    /// Builds the graph: at every definition point, the defined variables
    /// interfere with everything live after the instruction — except that
    /// the destination of a `mov` does not interfere with its source *on
    /// account of that copy alone*.
    pub fn build(f: &Function, _cfg: &Cfg, live: &Liveness) -> InterferenceGraph {
        let mut g = InterferenceGraph {
            adj: vec![HashSet::new(); f.num_vars()],
        };
        let mut cursor: BitSet<Var> = pooled(f.num_vars());
        for b in f.blocks() {
            live.live_exit_into(f, b, &mut cursor);
            for &i in f.block(b).insts.iter().rev() {
                let inst = f.inst(i);
                if inst.is_phi() {
                    continue;
                }
                let move_src = if inst.opcode == Opcode::Mov {
                    Some(inst.uses[0].var)
                } else {
                    None
                };
                for d in inst.defs {
                    for l in cursor.iter() {
                        if l != d.var && Some(l) != move_src {
                            g.add_edge(d.var, l);
                        }
                    }
                }
                // Simultaneously-defined variables interfere.
                for (k, d1) in inst.defs.iter().enumerate() {
                    for d2 in &inst.defs[k + 1..] {
                        g.add_edge(d1.var, d2.var);
                    }
                }
                for d in inst.defs {
                    cursor.remove(d.var);
                }
                for u in inst.uses {
                    cursor.insert(u.var);
                }
            }
        }
        recycle(cursor);
        g
    }

    /// [`InterferenceGraph::build`] restricted to the variables in
    /// `among`: only edges with **both** endpoints in `among` are
    /// recorded (the edge set is exactly the full graph's restriction,
    /// so queries between `among` members are exact). The live cursor is
    /// kept intersected with `among`, and instructions defining no
    /// tracked variable skip the edge loop entirely — this is what the
    /// aggressive coalescer wants, since it only ever queries
    /// move-operand pairs.
    pub fn build_among(
        f: &Function,
        _cfg: &Cfg,
        live: &Liveness,
        among: &BitSet<Var>,
    ) -> InterferenceGraph {
        let mut g = InterferenceGraph::empty(f.num_vars());
        let mut cursor: BitSet<Var> = pooled(f.num_vars());
        for b in f.blocks() {
            live.live_exit_into(f, b, &mut cursor);
            cursor.intersect_with(among);
            for &i in f.block(b).insts.iter().rev() {
                let inst = f.inst(i);
                if inst.is_phi() {
                    continue;
                }
                if inst.defs.iter().any(|d| among.contains(d.var)) {
                    let move_src = if inst.opcode == Opcode::Mov {
                        Some(inst.uses[0].var)
                    } else {
                        None
                    };
                    for d in inst.defs {
                        if !among.contains(d.var) {
                            continue;
                        }
                        for l in cursor.iter() {
                            if l != d.var && Some(l) != move_src {
                                g.add_edge(d.var, l);
                            }
                        }
                    }
                    for (k, d1) in inst.defs.iter().enumerate() {
                        for d2 in &inst.defs[k + 1..] {
                            if among.contains(d1.var) && among.contains(d2.var) {
                                g.add_edge(d1.var, d2.var);
                            }
                        }
                    }
                }
                for d in inst.defs {
                    cursor.remove(d.var);
                }
                for u in inst.uses {
                    if among.contains(u.var) {
                        cursor.insert(u.var);
                    }
                }
            }
        }
        recycle(cursor);
        g
    }

    /// Creates an empty graph over `n` variables.
    pub fn empty(n: usize) -> InterferenceGraph {
        InterferenceGraph {
            adj: vec![HashSet::new(); n],
        }
    }

    /// Adds an interference edge.
    pub fn add_edge(&mut self, a: Var, b: Var) {
        if a == b {
            return;
        }
        self.adj[a.index()].insert(b);
        self.adj[b.index()].insert(a);
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: Var, b: Var) -> bool {
        self.adj[a.index()].contains(&b)
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: Var) -> impl Iterator<Item = Var> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Var) -> usize {
        self.adj[v.index()].len()
    }

    /// Merges vertex `b` into vertex `a` (after coalescing the move
    /// `a = b` or `b = a`): `a` inherits `b`'s neighbors and `b` becomes
    /// isolated. This is the cheap SSA-style "simple edge union" merge the
    /// paper contrasts with re-running liveness (§3.5).
    pub fn merge(&mut self, a: Var, b: Var) {
        debug_assert!(!self.interferes(a, b), "merging interfering vars");
        let bn: Vec<Var> = self.adj[b.index()].drain().collect();
        for n in bn {
            self.adj[n.index()].remove(&b);
            if n != a {
                self.add_edge(a, n);
            }
        }
    }

    /// Total number of edges (for diagnostics).
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn setup(text: &str) -> (Function, InterferenceGraph) {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let g = InterferenceGraph::build(&f, &cfg, &live);
        (f, g)
    }

    fn var(f: &Function, name: &str) -> Var {
        f.vars().find(|&v| f.var(v).name == name).unwrap()
    }

    #[test]
    fn overlapping_ranges_interfere() {
        let (f, g) = setup(
            "func @i {
entry:
  %a = make 1
  %b = make 2
  %c = add %a, %b
  ret %c
}",
        );
        assert!(g.interferes(var(&f, "a"), var(&f, "b")));
        assert!(!g.interferes(var(&f, "a"), var(&f, "c")));
    }

    #[test]
    fn move_does_not_create_interference() {
        let (f, g) = setup(
            "func @m {
entry:
  %a = make 1
  %b = mov %a
  ret %b
}",
        );
        assert!(!g.interferes(var(&f, "a"), var(&f, "b")));
    }

    #[test]
    fn copy_related_overlap_still_coalescable() {
        let (f, g) = setup(
            "func @m {
entry:
  %a = make 1
  %b = mov %a
  %c = add %a, %b
  ret %c
}",
        );
        // a and b overlap, but only through the copy: they hold the same
        // value, so Chaitin's construction leaves them coalescable.
        assert!(!g.interferes(var(&f, "a"), var(&f, "b")));
    }

    #[test]
    fn redefined_source_interferes_with_copy_dest() {
        let (f, g) = setup(
            "func @m {
entry:
  %b = make 5
  %a = make 1
  %b = mov %a
  %a = make 2
  %c = add %a, %b
  ret %c
}",
        );
        // a is redefined while b is live: a genuinely interferes with b.
        assert!(g.interferes(var(&f, "a"), var(&f, "b")));
    }

    #[test]
    fn simultaneous_defs_interfere() {
        let (f, g) = setup(
            "func @s {
entry:
  %a, %b = input
  ret %a
}",
        );
        assert!(g.interferes(var(&f, "a"), var(&f, "b")));
    }

    #[test]
    fn merge_unions_neighbors() {
        let (f, mut g) = setup(
            "func @m {
entry:
  %a = make 1
  %b = mov %a
  %x = make 9
  %c = add %b, %x
  ret %c
}",
        );
        let (a, b, x) = (var(&f, "a"), var(&f, "b"), var(&f, "x"));
        // b interferes with x (x defined while b live)? x defined after b,
        // b live across x's def.
        assert!(g.interferes(b, x) || g.interferes(x, b));
        assert!(!g.interferes(a, b));
        g.merge(a, b);
        assert!(g.interferes(a, x));
        assert_eq!(g.degree(b), 0);
    }
}
