//! Natural-loop analysis: back edges, loop membership, nesting depth.
//!
//! The coalescer visits confluence points "based on an inner to outer
//! loop traversal, so as to optimize in priority the most frequently
//! executed blocks" (paper §3, Algorithm 1), and Table 5 weights each
//! `mov` by `5^depth`.

use crate::domtree::DomTree;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, EntityVec};
use tossa_ir::Function;

/// Loop nesting information.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    depth: EntityVec<Block, u32>,
    headers: Vec<Block>,
    /// Loop body per header, parallel to `headers` (back edges sharing a
    /// header are merged into one natural loop).
    bodies: Vec<Vec<Block>>,
}

impl LoopInfo {
    /// Computes natural loops from back edges (`a -> h` with `h`
    /// dominating `a`) and derives a nesting depth per block. Blocks of a
    /// natural loop are found by a backward walk from the latch stopping
    /// at the header.
    pub fn compute(f: &Function, cfg: &Cfg, dt: &DomTree) -> LoopInfo {
        let n = f.num_blocks();
        let mut depth: EntityVec<Block, u32> = EntityVec::filled(n, 0);
        let mut headers: Vec<Block> = Vec::new();
        // Collect loops per header (merging bodies of shared headers).
        let mut body_of: Vec<(Block, Vec<Block>)> = Vec::new();
        for a in f.blocks() {
            if !dt.is_reachable(a) {
                continue;
            }
            for &h in f.succs(a) {
                if !dt.dominates(h, a) {
                    continue;
                }
                // Natural loop of back edge a -> h.
                let mut body = vec![h];
                let mut in_body = vec![false; n];
                in_body[h.index()] = true;
                let mut stack = vec![a];
                while let Some(b) = stack.pop() {
                    if in_body[b.index()] {
                        continue;
                    }
                    in_body[b.index()] = true;
                    body.push(b);
                    for &p in cfg.preds(b) {
                        if dt.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
                match body_of.iter_mut().find(|(hh, _)| *hh == h) {
                    Some((_, existing)) => {
                        for b in body {
                            if !existing.contains(&b) {
                                existing.push(b);
                            }
                        }
                    }
                    None => {
                        headers.push(h);
                        body_of.push((h, body));
                    }
                }
            }
        }
        // Depth of a block = number of distinct loops containing it.
        for (_, body) in &body_of {
            for &b in body {
                depth[b] += 1;
            }
        }
        let bodies = headers
            .iter()
            .map(|h| {
                body_of
                    .iter()
                    .find(|(hh, _)| hh == h)
                    .map(|(_, body)| body.clone())
                    .unwrap_or_default()
            })
            .collect();
        LoopInfo {
            depth,
            headers,
            bodies,
        }
    }

    /// Loop nesting depth of `b` (0 outside any loop).
    pub fn depth(&self, b: Block) -> u32 {
        self.depth[b]
    }

    /// The loop headers, in discovery order.
    pub fn headers(&self) -> &[Block] {
        &self.headers
    }

    /// The maximum nesting depth in the function.
    pub fn max_depth(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }

    /// The blocks of the natural loop headed by `h` (header included),
    /// or `None` when `h` is not a loop header. Back edges sharing a
    /// header are merged, matching [`LoopInfo::depth`].
    pub fn body(&self, h: Block) -> Option<&[Block]> {
        self.headers
            .iter()
            .position(|&hh| hh == h)
            .map(|idx| self.bodies[idx].as_slice())
    }

    /// The Table 5 execution-frequency weight of `b`: `5^depth`,
    /// saturating. This is the per-occurrence unit of the allocator's
    /// spill-cost model.
    pub fn weight(&self, b: Block) -> u64 {
        5u64.saturating_pow(self.depth(b))
    }

    /// Reachable blocks ordered from the innermost loops outwards
    /// (decreasing depth), ties broken by reverse postorder — the
    /// traversal order of the paper's Algorithm 1.
    pub fn blocks_inner_to_outer(&self, dt: &DomTree) -> Vec<Block> {
        let mut blocks: Vec<Block> = dt.rpo().to_vec();
        blocks.sort_by_key(|&b| (std::cmp::Reverse(self.depth(b)), dt.rpo_pos(b)));
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn setup(text: &str) -> (Function, Cfg, DomTree) {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        (f, cfg, dt)
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        let (f, cfg, dt) = setup(
            "func @n {
entry:
  %c = input
  jump outer
outer:
  jump inner
inner:
  br %c, inner, outertest
outertest:
  br %c, outer, exit
exit:
  ret %c
}",
        );
        let li = LoopInfo::compute(&f, &cfg, &dt);
        let (outer, inner, outertest) = (Block::new(1), Block::new(2), Block::new(3));
        assert_eq!(li.depth(f.entry), 0);
        assert_eq!(li.depth(outer), 1);
        assert_eq!(li.depth(outertest), 1);
        assert_eq!(li.depth(inner), 2);
        assert_eq!(li.depth(Block::new(4)), 0);
        assert_eq!(li.max_depth(), 2);
        assert_eq!(li.headers().len(), 2);
    }

    #[test]
    fn straightline_has_no_loops() {
        let (f, cfg, dt) = setup("func @s {\nentry:\n  ret\n}");
        let li = LoopInfo::compute(&f, &cfg, &dt);
        assert_eq!(li.max_depth(), 0);
        assert!(li.headers().is_empty());
    }

    #[test]
    fn inner_to_outer_order() {
        let (f, cfg, dt) = setup(
            "func @n {
entry:
  %c = input
  jump outer
outer:
  jump inner
inner:
  br %c, inner, outertest
outertest:
  br %c, outer, exit
exit:
  ret %c
}",
        );
        let li = LoopInfo::compute(&f, &cfg, &dt);
        let order = li.blocks_inner_to_outer(&dt);
        assert_eq!(order[0], Block::new(2)); // inner first
        assert_eq!(*order.last().unwrap(), Block::new(4)); // exit last
                                                           // Depths never increase along the order.
        for w in order.windows(2) {
            assert!(li.depth(w[0]) >= li.depth(w[1]));
        }
    }

    #[test]
    fn bodies_and_weights_follow_nesting() {
        let (f, cfg, dt) = setup(
            "func @n {
entry:
  %c = input
  jump outer
outer:
  jump inner
inner:
  br %c, inner, outertest
outertest:
  br %c, outer, exit
exit:
  ret %c
}",
        );
        let li = LoopInfo::compute(&f, &cfg, &dt);
        let (outer, inner, outertest) = (Block::new(1), Block::new(2), Block::new(3));
        let outer_body = li.body(outer).unwrap();
        assert!(outer_body.contains(&outer) && outer_body.contains(&inner));
        assert!(outer_body.contains(&outertest));
        assert_eq!(li.body(inner).unwrap(), &[inner]);
        assert!(li.body(f.entry).is_none());
        assert_eq!(li.weight(f.entry), 1);
        assert_eq!(li.weight(outer), 5);
        assert_eq!(li.weight(inner), 25);
    }

    #[test]
    fn self_loop() {
        let (f, cfg, dt) = setup(
            "func @s {
entry:
  %c = input
  jump l
l:
  br %c, l, exit
exit:
  ret %c
}",
        );
        let li = LoopInfo::compute(&f, &cfg, &dt);
        assert_eq!(li.depth(Block::new(1)), 1);
        assert_eq!(li.headers(), &[Block::new(1)]);
    }
}
