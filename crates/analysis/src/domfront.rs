//! Dominance frontiers (Cytron et al.), used for φ placement.

use crate::domtree::DomTree;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, EntityVec};
use tossa_ir::Function;

/// The dominance frontier of every block.
#[derive(Clone, Debug)]
pub struct DomFrontiers {
    df: EntityVec<Block, Vec<Block>>,
}

impl DomFrontiers {
    /// Computes dominance frontiers with the standard two-level walk: a
    /// block `b` with several predecessors is in the frontier of every
    /// dominator of a predecessor up to (excluding) `idom(b)`.
    pub fn compute(f: &Function, cfg: &Cfg, dt: &DomTree) -> DomFrontiers {
        let mut df: EntityVec<Block, Vec<Block>> = EntityVec::filled(f.num_blocks(), Vec::new());
        for b in f.blocks() {
            if !dt.is_reachable(b) || cfg.preds(b).len() < 2 {
                continue;
            }
            let idom_b = dt.idom(b);
            for &p in cfg.preds(b) {
                if !dt.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while Some(runner) != idom_b {
                    if !df[runner].contains(&b) {
                        df[runner].push(b);
                    }
                    match dt.idom(runner) {
                        Some(d) => runner = d,
                        None => break, // reached the entry
                    }
                }
            }
        }
        DomFrontiers { df }
    }

    /// The dominance frontier of `b`.
    pub fn frontier(&self, b: Block) -> &[Block] {
        &self.df[b]
    }

    /// Iterated dominance frontier of a set of blocks (the φ insertion
    /// sites for a variable defined in those blocks).
    pub fn iterated(&self, seeds: impl IntoIterator<Item = Block>) -> Vec<Block> {
        let mut out: Vec<Block> = Vec::new();
        let mut in_out = vec![false; self.df.len()];
        let mut work: Vec<Block> = seeds.into_iter().collect();
        let mut queued = vec![false; self.df.len()];
        for &b in &work {
            queued[b.index()] = true;
        }
        while let Some(b) = work.pop() {
            for &d in self.frontier(b) {
                if !in_out[d.index()] {
                    in_out[d.index()] = true;
                    out.push(d);
                    if !queued[d.index()] {
                        queued[d.index()] = true;
                        work.push(d);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domtree::DomTree;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn setup(text: &str) -> (Function, Cfg, DomTree) {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        (f, cfg, dt)
    }

    #[test]
    fn diamond_frontier_is_join() {
        let (f, cfg, dt) = setup(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  jump exit
r:
  jump exit
exit:
  ret %c
}",
        );
        let df = DomFrontiers::compute(&f, &cfg, &dt);
        let (l, r, exit) = (Block::new(1), Block::new(2), Block::new(3));
        assert_eq!(df.frontier(l), &[exit]);
        assert_eq!(df.frontier(r), &[exit]);
        assert_eq!(df.frontier(f.entry), &[] as &[Block]);
        assert_eq!(df.frontier(exit), &[] as &[Block]);
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let (f, cfg, dt) = setup(
            "func @l {
entry:
  %c = input
  jump head
head:
  br %c, body, exit
body:
  jump head
exit:
  ret %c
}",
        );
        let df = DomFrontiers::compute(&f, &cfg, &dt);
        let (head, body) = (Block::new(1), Block::new(2));
        assert_eq!(df.frontier(body), &[head]);
        // head's frontier contains head itself (back edge).
        assert!(df.frontier(head).contains(&head));
    }

    #[test]
    fn iterated_frontier_cascades() {
        let (f, cfg, dt) = setup(
            "func @c {
entry:
  %c = input
  br %c, a, b
a:
  jump j1
b:
  jump j1
j1:
  br %c, c2, d
c2:
  jump j2
d:
  jump j2
j2:
  ret %c
}",
        );
        let df = DomFrontiers::compute(&f, &cfg, &dt);
        let a = Block::new(1);
        let j1 = Block::new(3);
        let j2 = Block::new(6);
        let idf = df.iterated([a]);
        assert!(idf.contains(&j1));
        // j1 dominates... j1's frontier: j2? No: j1 dominates c2,d and j2,
        // so frontier(j1) is empty; a def in `a` needs a φ only at j1.
        assert!(!idf.contains(&j2));
        // But a def in c2 cascades nowhere; a def in j1 reaches j2? j1
        // dominates j2 so no φ needed: frontier check.
        assert_eq!(df.frontier(j1), &[] as &[Block]);
    }
}
