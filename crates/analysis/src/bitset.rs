//! A compact fixed-capacity bit set over entity ids.

use std::marker::PhantomData;
use tossa_ir::ids::EntityId;

/// A dense bit set indexed by a typed entity id.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet<K: EntityId> {
    words: Vec<u64>,
    _marker: PhantomData<K>,
}

impl<K: EntityId> BitSet<K> {
    /// Creates an empty set with capacity for `len` entities.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            _marker: PhantomData,
        }
    }

    /// Inserts `k`; returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `k` exceeds the capacity.
    pub fn insert(&mut self, k: K) -> bool {
        let (w, b) = (k.index() / 64, k.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes `k`; returns true if it was present.
    pub fn remove(&mut self, k: K) -> bool {
        let (w, b) = (k.index() / 64, k.index() % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    pub fn contains(&self, k: K) -> bool {
        let (w, b) = (k.index() / 64, k.index() % 64);
        self.words.get(w).is_some_and(|&word| word & (1 << b) != 0)
    }

    /// In-place union; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet<K>) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place `self |= other \ minus`, in one word-level pass; returns
    /// true if `self` changed. This is the inner step of the liveness
    /// worklist (`live_out(b) |= live_in(s) \ phi_defs(s)`), fused so the
    /// hot loop allocates nothing and touches each word once.
    pub fn union_with_minus(&mut self, other: &BitSet<K>, minus: &BitSet<K>) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        debug_assert_eq!(self.words.len(), minus.words.len());
        let mut changed = false;
        for ((a, &b), &m) in self.words.iter_mut().zip(&other.words).zip(&minus.words) {
            let new = *a | (b & !m);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place intersection (`self &= other`).
    pub fn intersect_with(&mut self, other: &BitSet<K>) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self -= other`).
    pub fn subtract(&mut self, other: &BitSet<K>) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether the intersection with `other` is non-empty.
    pub fn intersects(&self, other: &BitSet<K>) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(K::from_index(wi * 64 + b))
            })
        })
    }
}

impl<K: EntityId> std::fmt::Debug for BitSet<K>
where
    K: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::ids::Var;

    #[test]
    fn insert_remove_contains() {
        let mut s: BitSet<Var> = BitSet::new(200);
        assert!(s.insert(Var::new(3)));
        assert!(!s.insert(Var::new(3)));
        assert!(s.insert(Var::new(150)));
        assert!(s.contains(Var::new(3)));
        assert!(!s.contains(Var::new(4)));
        assert!(s.remove(Var::new(3)));
        assert!(!s.remove(Var::new(3)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_and_subtract() {
        let mut a: BitSet<Var> = BitSet::new(100);
        let mut b: BitSet<Var> = BitSet::new(100);
        a.insert(Var::new(1));
        b.insert(Var::new(2));
        b.insert(Var::new(1));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn iter_in_order() {
        let mut s: BitSet<Var> = BitSet::new(300);
        for i in [250, 3, 64, 65] {
            s.insert(Var::new(i));
        }
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![3, 64, 65, 250]);
    }

    #[test]
    fn intersects() {
        let mut a: BitSet<Var> = BitSet::new(100);
        let mut b: BitSet<Var> = BitSet::new(100);
        a.insert(Var::new(70));
        assert!(!a.intersects(&b));
        b.insert(Var::new(70));
        assert!(a.intersects(&b));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s: BitSet<Var> = BitSet::new(10);
        assert!(!s.contains(Var::new(1000)));
    }
}
