//! A compact fixed-capacity bit set over entity ids, with a thread-local
//! buffer pool so hot analyses reuse scratch rows instead of hitting the
//! allocator once per block or per definition.

use std::cell::RefCell;
use std::marker::PhantomData;
use tossa_ir::ids::EntityId;

/// A dense bit set indexed by a typed entity id.
#[derive(PartialEq, Eq)]
pub struct BitSet<K: EntityId> {
    words: Vec<u64>,
    _marker: PhantomData<K>,
}

impl<K: EntityId> Clone for BitSet<K> {
    fn clone(&self) -> Self {
        BitSet {
            words: self.words.clone(),
            _marker: PhantomData,
        }
    }

    /// Reuses `self`'s existing buffer when its capacity suffices, so
    /// `clone_from` in a loop (the live cursor of a backward scan)
    /// allocates at most once.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
    }
}

impl<K: EntityId> BitSet<K> {
    /// Creates an empty set with capacity for `len` entities.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            _marker: PhantomData,
        }
    }

    /// Inserts `k`; returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `k` exceeds the capacity.
    pub fn insert(&mut self, k: K) -> bool {
        let (w, b) = (k.index() / 64, k.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes `k`; returns true if it was present.
    pub fn remove(&mut self, k: K) -> bool {
        let (w, b) = (k.index() / 64, k.index() % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    pub fn contains(&self, k: K) -> bool {
        let (w, b) = (k.index() / 64, k.index() % 64);
        self.words.get(w).is_some_and(|&word| word & (1 << b) != 0)
    }

    /// In-place union; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet<K>) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place `self |= other \ minus`, in one word-level pass; returns
    /// true if `self` changed. This is the inner step of the liveness
    /// worklist (`live_out(b) |= live_in(s) \ phi_defs(s)`), fused so the
    /// hot loop allocates nothing and touches each word once.
    pub fn union_with_minus(&mut self, other: &BitSet<K>, minus: &BitSet<K>) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        debug_assert_eq!(self.words.len(), minus.words.len());
        let mut changed = false;
        for ((a, &b), &m) in self.words.iter_mut().zip(&other.words).zip(&minus.words) {
            let new = *a | (b & !m);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place intersection (`self &= other`).
    pub fn intersect_with(&mut self, other: &BitSet<K>) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self -= other`).
    pub fn subtract(&mut self, other: &BitSet<K>) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether the intersection with `other` is non-empty.
    pub fn intersects(&self, other: &BitSet<K>) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(K::from_index(wi * 64 + b))
            })
        })
    }
}

/// A freelist of word buffers backing [`BitSet`]s. One pool per thread;
/// draw sets with [`pooled`], return them with [`recycle`]. The analysis
/// result types ([`crate::liveness::Liveness`],
/// [`crate::liveness::LiveAtDefs`]) recycle their rows on drop, so each
/// cache invalidate/recompute cycle reuses the previous epoch's buffers.
#[derive(Default)]
struct BitsetPool {
    free: Vec<Vec<u64>>,
}

/// Upper bound on retained buffers, so a one-off huge run doesn't pin
/// its scratch memory for the rest of the thread's life.
const POOL_CAP: usize = 4096;

impl BitsetPool {
    fn acquire(&mut self, words: usize) -> Vec<u64> {
        match self.free.pop() {
            Some(mut w) => {
                w.clear();
                w.resize(words, 0);
                w
            }
            None => vec![0; words],
        }
    }

    fn release(&mut self, w: Vec<u64>) {
        if self.free.len() < POOL_CAP && w.capacity() > 0 {
            self.free.push(w);
        }
    }
}

thread_local! {
    static POOL: RefCell<BitsetPool> = RefCell::new(BitsetPool::default());
}

/// An empty set with capacity for `len` entities, drawing its backing
/// buffer from the thread-local pool. Identical observable behavior to
/// [`BitSet::new`].
pub fn pooled<K: EntityId>(len: usize) -> BitSet<K> {
    let words = len.div_ceil(64);
    POOL.with(|p| BitSet {
        words: p.borrow_mut().acquire(words),
        _marker: PhantomData,
    })
}

/// Returns a set's buffer to the thread-local pool for later reuse.
pub fn recycle<K: EntityId>(s: BitSet<K>) {
    POOL.with(|p| p.borrow_mut().release(s.words));
}

/// Number of buffers currently retained by this thread's pool (for
/// diagnostics and tests).
pub fn pool_len() -> usize {
    POOL.with(|p| p.borrow().free.len())
}

impl<K: EntityId> std::fmt::Debug for BitSet<K>
where
    K: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::ids::Var;

    #[test]
    fn insert_remove_contains() {
        let mut s: BitSet<Var> = BitSet::new(200);
        assert!(s.insert(Var::new(3)));
        assert!(!s.insert(Var::new(3)));
        assert!(s.insert(Var::new(150)));
        assert!(s.contains(Var::new(3)));
        assert!(!s.contains(Var::new(4)));
        assert!(s.remove(Var::new(3)));
        assert!(!s.remove(Var::new(3)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_and_subtract() {
        let mut a: BitSet<Var> = BitSet::new(100);
        let mut b: BitSet<Var> = BitSet::new(100);
        a.insert(Var::new(1));
        b.insert(Var::new(2));
        b.insert(Var::new(1));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn iter_in_order() {
        let mut s: BitSet<Var> = BitSet::new(300);
        for i in [250, 3, 64, 65] {
            s.insert(Var::new(i));
        }
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![3, 64, 65, 250]);
    }

    #[test]
    fn intersects() {
        let mut a: BitSet<Var> = BitSet::new(100);
        let mut b: BitSet<Var> = BitSet::new(100);
        a.insert(Var::new(70));
        assert!(!a.intersects(&b));
        b.insert(Var::new(70));
        assert!(a.intersects(&b));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s: BitSet<Var> = BitSet::new(10);
        assert!(!s.contains(Var::new(1000)));
    }

    #[test]
    fn pooled_sets_start_empty_and_buffers_round_trip() {
        let mut a: BitSet<Var> = pooled(100);
        assert!(a.is_empty());
        a.insert(Var::new(42));
        let before = pool_len();
        recycle(a);
        assert_eq!(pool_len(), before + 1);
        // A recycled buffer comes back zeroed even at a different size.
        let b: BitSet<Var> = pooled(500);
        assert_eq!(pool_len(), before);
        assert!(b.is_empty());
        assert!(!b.contains(Var::new(42)));
        recycle(b);
    }

    #[test]
    fn clone_from_reuses_capacity() {
        let mut dst: BitSet<Var> = BitSet::new(200);
        let mut src: BitSet<Var> = BitSet::new(200);
        src.insert(Var::new(7));
        src.insert(Var::new(130));
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }
}
