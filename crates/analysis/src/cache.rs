//! The analysis manager: one [`AnalysisCache`] per function pipeline,
//! lazily computing and memoizing every analysis for the current
//! *revision* of the function, with explicit invalidation when a pass
//! mutates code.
//!
//! # Architecture
//!
//! Passes never call `Liveness::compute` / `DomTree::compute` & co.
//! directly; they ask the cache, which computes each analysis at most
//! once per mutation epoch and hands out cheap [`Rc`] handles. Handles
//! stay valid (and shareable) even while later passes request further
//! analyses, so a pass can hold `DomTree`, `Liveness`, and `LiveAtDefs`
//! simultaneously without borrow gymnastics.
//!
//! # Invalidation rules
//!
//! * Any structural mutation — adding/removing instructions or blocks,
//!   rewriting operands, splitting edges — requires
//!   [`AnalysisCache::invalidate`] before the next analysis request.
//! * *Pinning* mutations (setting `var.pin`) change no analysis input:
//!   liveness, dominance, and definition sites are oblivious to resource
//!   assignment, so pinning passes keep the cache hot. This is the
//!   paper's own observation for `Program_pinning`: analyses are computed
//!   once and stay valid across all merges.
//! * In debug builds every access fingerprints the function's structure
//!   and panics on a mismatch with the epoch's first access, so a missing
//!   `invalidate` is caught at the offending call site rather than as a
//!   silently stale answer.

use crate::liveness::{DefMap, LiveAtDefs, Liveness};
use crate::loops::LoopInfo;
use crate::DomTree;
use std::rc::Rc;
use tossa_ir::cfg::Cfg;
use tossa_ir::Function;

/// Lazily computed, memoized analyses for one revision of a function.
#[derive(Default)]
pub struct AnalysisCache {
    revision: u64,
    cfg: Option<Rc<Cfg>>,
    domtree: Option<Rc<DomTree>>,
    liveness: Option<Rc<Liveness>>,
    defs: Option<Rc<DefMap>>,
    lad: Option<Rc<LiveAtDefs>>,
    loops: Option<Rc<LoopInfo>>,
    /// Structural fingerprint of the function at the first access of this
    /// epoch; used by debug builds to detect missing invalidation.
    #[cfg(debug_assertions)]
    fingerprint: Option<u64>,
}

impl AnalysisCache {
    /// An empty cache at revision 0.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// The current mutation epoch (bumped by [`AnalysisCache::invalidate`]).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Drops the analyses that read instruction bodies (liveness,
    /// definition sites, live-after-def) but keeps the CFG-shape
    /// analyses (CFG, dominators, loops). Sound after mutations that
    /// insert, remove, or rewrite non-branch instructions without
    /// touching terminators or block structure — copy insertion, move
    /// coalescing, dead code elimination.
    pub fn invalidate_instructions(&mut self) {
        self.revision += 1;
        self.liveness = None;
        self.defs = None;
        self.lad = None;
        #[cfg(debug_assertions)]
        {
            self.fingerprint = None;
        }
    }

    /// Drops every memoized analysis and starts a new mutation epoch.
    /// Call after any structural change to the function.
    pub fn invalidate(&mut self) {
        self.revision += 1;
        self.cfg = None;
        self.domtree = None;
        self.liveness = None;
        self.defs = None;
        self.lad = None;
        self.loops = None;
        #[cfg(debug_assertions)]
        {
            self.fingerprint = None;
        }
    }

    /// Debug-mode staleness check: the function's structure must match
    /// the first access of this epoch.
    #[cfg(debug_assertions)]
    fn check_revision(&mut self, f: &Function) {
        let fp = fingerprint(f);
        match self.fingerprint {
            None => self.fingerprint = Some(fp),
            Some(expected) => assert!(
                expected == fp,
                "AnalysisCache: function mutated without invalidate() \
                 (revision {}); call cache.invalidate() after structural \
                 changes",
                self.revision
            ),
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_revision(&mut self, _f: &Function) {}

    /// The control-flow graph (with its cached reverse postorder).
    pub fn cfg(&mut self, f: &Function) -> Rc<Cfg> {
        self.check_revision(f);
        if self.cfg.is_none() {
            self.cfg = Some(Rc::new(Cfg::compute(f)));
        }
        Rc::clone(self.cfg.as_ref().unwrap())
    }

    /// The dominator tree.
    pub fn domtree(&mut self, f: &Function) -> Rc<DomTree> {
        self.check_revision(f);
        if self.domtree.is_none() {
            let cfg = self.cfg(f);
            self.domtree = Some(Rc::new(DomTree::compute(f, &cfg)));
        }
        Rc::clone(self.domtree.as_ref().unwrap())
    }

    /// Liveness with the paper's φ conventions.
    pub fn liveness(&mut self, f: &Function) -> Rc<Liveness> {
        self.check_revision(f);
        if self.liveness.is_none() {
            let cfg = self.cfg(f);
            self.liveness = Some(Rc::new(Liveness::compute(f, &cfg)));
        }
        Rc::clone(self.liveness.as_ref().unwrap())
    }

    /// Definition sites.
    pub fn defs(&mut self, f: &Function) -> Rc<DefMap> {
        self.check_revision(f);
        if self.defs.is_none() {
            self.defs = Some(Rc::new(DefMap::compute(f)));
        }
        Rc::clone(self.defs.as_ref().unwrap())
    }

    /// The exact live-after-def interference oracle.
    pub fn live_at_defs(&mut self, f: &Function) -> Rc<LiveAtDefs> {
        self.check_revision(f);
        if self.lad.is_none() {
            let live = self.liveness(f);
            let defs = self.defs(f);
            self.lad = Some(Rc::new(LiveAtDefs::compute(f, &live, &defs)));
        }
        Rc::clone(self.lad.as_ref().unwrap())
    }

    /// Natural loops and nesting depths.
    pub fn loops(&mut self, f: &Function) -> Rc<LoopInfo> {
        self.check_revision(f);
        if self.loops.is_none() {
            let cfg = self.cfg(f);
            let dt = self.domtree(f);
            self.loops = Some(Rc::new(LoopInfo::compute(f, &cfg, &dt)));
        }
        Rc::clone(self.loops.as_ref().unwrap())
    }
}

/// A cheap structural hash of everything the analyses read: block
/// shapes, opcodes, operands, φ predecessor lists, and branch targets.
/// Deliberately excludes `var.pin` — pinning is not an analysis input
/// (see the module docs), so pinning passes don't trip the staleness
/// check.
#[cfg(debug_assertions)]
fn fingerprint(f: &Function) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    f.num_blocks().hash(&mut h);
    f.num_vars().hash(&mut h);
    for b in f.blocks() {
        0xB10C_u16.hash(&mut h);
        for i in f.block_insts(b) {
            let inst = f.inst(i);
            (inst.opcode as u8).hash(&mut h);
            for d in &inst.defs {
                d.var.index().hash(&mut h);
            }
            for u in &inst.uses {
                u.var.index().hash(&mut h);
            }
            for &t in &inst.targets {
                t.index().hash(&mut h);
            }
            for &p in &inst.phi_preds {
                p.index().hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn sample() -> Function {
        parse_function(
            "func @c {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %i2 = addi %i, 1
  jump head
exit:
  ret %i
}",
            &Machine::dsp32(),
        )
        .unwrap()
    }

    #[test]
    fn analyses_are_memoized() {
        let f = sample();
        let mut cache = AnalysisCache::new();
        let a = cache.liveness(&f);
        let b = cache.liveness(&f);
        assert!(Rc::ptr_eq(&a, &b), "second access must hit the memo");
        let d1 = cache.domtree(&f);
        let d2 = cache.domtree(&f);
        assert!(Rc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn invalidate_starts_a_new_epoch() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        let before = cache.liveness(&f);
        assert_eq!(cache.revision(), 0);
        // Structural change + invalidation: fresh objects, same answers
        // recomputed from the new code.
        let exit = f.blocks().last().unwrap();
        let v = f.new_var("t");
        let at = f.block(exit).insts.len() - 1;
        f.insert_inst(
            exit,
            at,
            tossa_ir::InstData::new(tossa_ir::Opcode::Make)
                .with_defs(vec![v.into()])
                .with_imm(3),
        );
        cache.invalidate();
        assert_eq!(cache.revision(), 1);
        let after = cache.liveness(&f);
        assert!(!Rc::ptr_eq(&before, &after));
    }

    #[test]
    fn pinning_does_not_trip_the_staleness_check() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        let _ = cache.liveness(&f);
        let i = f.vars().find(|&v| f.var(v).name == "i").unwrap();
        tossa_ir::function::pin_var_to_reg(&mut f, i, tossa_ir::PhysReg(0));
        // Pins are not analysis inputs; no invalidation required.
        let _ = cache.domtree(&f);
        let _ = cache.live_at_defs(&f);
    }
}
