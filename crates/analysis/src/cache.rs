//! The analysis manager: one [`AnalysisCache`] per function pipeline,
//! lazily computing and memoizing every analysis for the current
//! *revision* of the function, with explicit invalidation when a pass
//! mutates code.
//!
//! # Architecture
//!
//! Passes never call `Liveness::compute` / `DomTree::compute` & co.
//! directly; they ask the cache, which computes each analysis at most
//! once per mutation epoch and hands out cheap [`Rc`] handles. Handles
//! stay valid (and shareable) even while later passes request further
//! analyses, so a pass can hold `DomTree`, `Liveness`, and `LiveAtDefs`
//! simultaneously without borrow gymnastics.
//!
//! # Invalidation rules
//!
//! * Any structural mutation — adding/removing instructions or blocks,
//!   rewriting operands, splitting edges — requires
//!   [`AnalysisCache::invalidate`] before the next analysis request.
//! * *Pinning* mutations (setting `var.pin`) change no analysis input:
//!   liveness, dominance, and definition sites are oblivious to resource
//!   assignment, so pinning passes keep the cache hot. This is the
//!   paper's own observation for `Program_pinning`: analyses are computed
//!   once and stay valid across all merges.
//! * In debug builds every access fingerprints the function's structure
//!   and panics on a mismatch with the epoch's first access, so a missing
//!   `invalidate` is caught at the offending call site rather than as a
//!   silently stale answer.

use crate::liveness::{DefMap, LiveAtDefs, Liveness};
use crate::loops::LoopInfo;
use crate::DomTree;
use std::fmt;
use std::rc::Rc;
use tossa_ir::cfg::Cfg;
use tossa_ir::Function;

/// A stale-analysis diagnostic: the function's structure changed since
/// the epoch's first access without an intervening
/// [`AnalysisCache::invalidate`]. Produced instead of a panic when the
/// cache runs in *deferred staleness* mode (checked pipelines), so the
/// violation can be reported per-function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleAnalysis {
    /// The mutation epoch during which the mismatch was observed.
    pub revision: u64,
    /// Names of the analyses that were memoized — and therefore stale —
    /// at detection time.
    pub stale: Vec<&'static str>,
}

impl fmt::Display for StaleAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stale analyses {:?} at mutation epoch {}: function mutated \
             without invalidate()",
            self.stale, self.revision
        )
    }
}

impl std::error::Error for StaleAnalysis {}

/// Lazily computed, memoized analyses for one revision of a function.
#[derive(Default)]
pub struct AnalysisCache {
    revision: u64,
    cfg: Option<Rc<Cfg>>,
    domtree: Option<Rc<DomTree>>,
    liveness: Option<Rc<Liveness>>,
    defs: Option<Rc<DefMap>>,
    lad: Option<Rc<LiveAtDefs>>,
    loops: Option<Rc<LoopInfo>>,
    /// Structural fingerprint of the function at the first access of this
    /// epoch; compared on every access in debug builds and in deferred
    /// staleness mode.
    fingerprint: Option<u64>,
    /// Deferred staleness mode: record [`StaleAnalysis`] and self-heal
    /// instead of panicking (and keep checking in release builds).
    deferred: bool,
    stale: Option<StaleAnalysis>,
}

/// Records one cache-accessor outcome on the trace sink (no-op when
/// tracing is disabled).
fn trace_access(hit: bool) {
    if hit {
        tossa_trace::count(tossa_trace::Counter::AnalysisCacheHits, 1);
    } else {
        tossa_trace::count(tossa_trace::Counter::AnalysisCacheMisses, 1);
    }
}

impl AnalysisCache {
    /// An empty cache at revision 0.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// The current mutation epoch (bumped by [`AnalysisCache::invalidate`]).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Drops the analyses that read instruction bodies (liveness,
    /// definition sites, live-after-def) but keeps the CFG-shape
    /// analyses (CFG, dominators, loops). Sound after mutations that
    /// insert, remove, or rewrite non-branch instructions without
    /// touching terminators or block structure — copy insertion, move
    /// coalescing, dead code elimination.
    pub fn invalidate_instructions(&mut self) {
        self.revision += 1;
        self.liveness = None;
        self.defs = None;
        self.lad = None;
        self.fingerprint = None;
    }

    /// Drops every memoized analysis and starts a new mutation epoch.
    /// Call after any structural change to the function.
    pub fn invalidate(&mut self) {
        self.revision += 1;
        self.cfg = None;
        self.domtree = None;
        self.liveness = None;
        self.defs = None;
        self.lad = None;
        self.loops = None;
        self.fingerprint = None;
    }

    /// Switches deferred staleness mode on or off. When on, a fingerprint
    /// mismatch records a [`StaleAnalysis`] diagnostic (retrievable with
    /// [`AnalysisCache::take_stale`]) and self-heals by invalidating, so
    /// the returned analyses are always fresh; the check also runs in
    /// release builds. When off (the default), a mismatch panics in debug
    /// builds and is not checked in release builds.
    pub fn set_deferred_staleness(&mut self, on: bool) {
        self.deferred = on;
    }

    /// Takes the recorded stale-analysis diagnostic, if a mismatch was
    /// observed in deferred mode since the last call.
    pub fn take_stale(&mut self) -> Option<StaleAnalysis> {
        self.stale.take()
    }

    /// The names of the currently memoized analyses.
    fn memoized(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        if self.cfg.is_some() {
            names.push("cfg");
        }
        if self.domtree.is_some() {
            names.push("domtree");
        }
        if self.liveness.is_some() {
            names.push("liveness");
        }
        if self.defs.is_some() {
            names.push("defs");
        }
        if self.lad.is_some() {
            names.push("live_at_defs");
        }
        if self.loops.is_some() {
            names.push("loops");
        }
        names
    }

    /// Staleness check: the function's structure must match the first
    /// access of this epoch. Runs in debug builds always and in release
    /// builds when deferred mode is on.
    fn check_revision(&mut self, f: &Function) {
        if !self.deferred && !cfg!(debug_assertions) {
            return;
        }
        let fp = fingerprint(f);
        match self.fingerprint {
            None => self.fingerprint = Some(fp),
            Some(expected) if expected == fp => {}
            Some(_) if self.deferred => {
                if self.stale.is_none() {
                    self.stale = Some(StaleAnalysis {
                        revision: self.revision,
                        stale: self.memoized(),
                    });
                }
                self.invalidate();
                self.fingerprint = Some(fp);
            }
            Some(_) => panic!(
                "AnalysisCache: function mutated without invalidate() \
                 (revision {}); call cache.invalidate() after structural \
                 changes",
                self.revision
            ),
        }
    }

    /// The control-flow graph (with its cached reverse postorder).
    pub fn cfg(&mut self, f: &Function) -> Rc<Cfg> {
        self.check_revision(f);
        trace_access(self.cfg.is_some());
        if self.cfg.is_none() {
            self.cfg = Some(tossa_trace::span("compute_cfg", || {
                Rc::new(Cfg::compute(f))
            }));
        }
        Rc::clone(self.cfg.as_ref().unwrap())
    }

    /// The dominator tree.
    pub fn domtree(&mut self, f: &Function) -> Rc<DomTree> {
        self.check_revision(f);
        trace_access(self.domtree.is_some());
        if self.domtree.is_none() {
            let cfg = self.cfg(f);
            self.domtree = Some(tossa_trace::span("compute_domtree", || {
                Rc::new(DomTree::compute(f, &cfg))
            }));
        }
        Rc::clone(self.domtree.as_ref().unwrap())
    }

    /// Liveness with the paper's φ conventions.
    pub fn liveness(&mut self, f: &Function) -> Rc<Liveness> {
        self.check_revision(f);
        trace_access(self.liveness.is_some());
        if self.liveness.is_none() {
            let cfg = self.cfg(f);
            self.liveness = Some(tossa_trace::span("compute_liveness", || {
                Rc::new(Liveness::compute(f, &cfg))
            }));
        }
        Rc::clone(self.liveness.as_ref().unwrap())
    }

    /// Definition sites.
    pub fn defs(&mut self, f: &Function) -> Rc<DefMap> {
        self.check_revision(f);
        trace_access(self.defs.is_some());
        if self.defs.is_none() {
            self.defs = Some(tossa_trace::span("compute_defs", || {
                Rc::new(DefMap::compute(f))
            }));
        }
        Rc::clone(self.defs.as_ref().unwrap())
    }

    /// The exact live-after-def interference oracle.
    pub fn live_at_defs(&mut self, f: &Function) -> Rc<LiveAtDefs> {
        self.check_revision(f);
        trace_access(self.lad.is_some());
        if self.lad.is_none() {
            let live = self.liveness(f);
            let defs = self.defs(f);
            self.lad = Some(tossa_trace::span("compute_live_at_defs", || {
                Rc::new(LiveAtDefs::compute(f, &live, &defs))
            }));
        }
        Rc::clone(self.lad.as_ref().unwrap())
    }

    /// Natural loops and nesting depths.
    pub fn loops(&mut self, f: &Function) -> Rc<LoopInfo> {
        self.check_revision(f);
        trace_access(self.loops.is_some());
        if self.loops.is_none() {
            let cfg = self.cfg(f);
            let dt = self.domtree(f);
            self.loops = Some(tossa_trace::span("compute_loops", || {
                Rc::new(LoopInfo::compute(f, &cfg, &dt))
            }));
        }
        Rc::clone(self.loops.as_ref().unwrap())
    }
}

/// A cheap structural hash of everything the analyses read: block
/// shapes, opcodes, operands, φ predecessor lists, and branch targets.
/// Deliberately excludes `var.pin` — pinning is not an analysis input
/// (see the module docs), so pinning passes don't trip the staleness
/// check.
fn fingerprint(f: &Function) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    f.num_blocks().hash(&mut h);
    f.num_vars().hash(&mut h);
    for b in f.blocks() {
        0xB10C_u16.hash(&mut h);
        for i in f.block_insts(b) {
            let inst = f.inst(i);
            (inst.opcode as u8).hash(&mut h);
            for d in inst.defs {
                d.var.index().hash(&mut h);
            }
            for u in inst.uses {
                u.var.index().hash(&mut h);
            }
            for &t in inst.targets {
                t.index().hash(&mut h);
            }
            for &p in inst.phi_preds {
                p.index().hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn sample() -> Function {
        parse_function(
            "func @c {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %i2 = addi %i, 1
  jump head
exit:
  ret %i
}",
            &Machine::dsp32(),
        )
        .unwrap()
    }

    #[test]
    fn analyses_are_memoized() {
        let f = sample();
        let mut cache = AnalysisCache::new();
        let a = cache.liveness(&f);
        let b = cache.liveness(&f);
        assert!(Rc::ptr_eq(&a, &b), "second access must hit the memo");
        let d1 = cache.domtree(&f);
        let d2 = cache.domtree(&f);
        assert!(Rc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn invalidate_starts_a_new_epoch() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        let before = cache.liveness(&f);
        assert_eq!(cache.revision(), 0);
        // Structural change + invalidation: fresh objects, same answers
        // recomputed from the new code.
        let exit = f.blocks().last().unwrap();
        let v = f.new_var("t");
        let at = f.block(exit).insts.len() - 1;
        f.insert_inst(
            exit,
            at,
            tossa_ir::InstData::new(tossa_ir::Opcode::Make)
                .with_defs(vec![v.into()])
                .with_imm(3),
        );
        cache.invalidate();
        assert_eq!(cache.revision(), 1);
        let after = cache.liveness(&f);
        assert!(!Rc::ptr_eq(&before, &after));
    }

    fn mutate(f: &mut Function) {
        let exit = f.blocks().last().unwrap();
        let v = f.new_var("t");
        let at = f.block(exit).insts.len() - 1;
        f.insert_inst(
            exit,
            at,
            tossa_ir::InstData::new(tossa_ir::Opcode::Make)
                .with_defs(vec![v.into()])
                .with_imm(3),
        );
    }

    #[test]
    fn deferred_mode_records_stale_and_self_heals() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        cache.set_deferred_staleness(true);
        let before = cache.liveness(&f);
        let _ = cache.domtree(&f);
        mutate(&mut f); // no invalidate(): a pass forgot to tell the cache
        let after = cache.liveness(&f);
        let diag = cache.take_stale().expect("mismatch must be recorded");
        assert_eq!(diag.revision, 0);
        assert!(diag.stale.contains(&"liveness"), "{diag}");
        assert!(diag.stale.contains(&"domtree"), "{diag}");
        // Self-healed: the answer is fresh, not the stale memo.
        assert!(!Rc::ptr_eq(&before, &after));
        assert!(cache.take_stale().is_none(), "diagnostic is taken once");
    }

    #[test]
    fn deferred_mode_quiet_when_invalidation_is_correct() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        cache.set_deferred_staleness(true);
        let _ = cache.liveness(&f);
        mutate(&mut f);
        cache.invalidate();
        let _ = cache.liveness(&f);
        assert!(cache.take_stale().is_none());
    }

    #[test]
    fn pinning_does_not_trip_the_staleness_check() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        let _ = cache.liveness(&f);
        let i = f.vars().find(|&v| f.var(v).name == "i").unwrap();
        tossa_ir::function::pin_var_to_reg(&mut f, i, tossa_ir::PhysReg(0));
        // Pins are not analysis inputs; no invalidation required.
        let _ = cache.domtree(&f);
        let _ = cache.live_at_defs(&f);
    }
}
