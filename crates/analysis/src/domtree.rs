//! Dominator tree via the Cooper–Harvey–Kennedy algorithm.
//!
//! SSA construction places φs on iterated dominance frontiers, and the
//! paper's Class 1 interference test asks whether one definition
//! dominates another (§3.2). Both are answered here.

use crate::bitset::BitSet;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, EntityVec};
use tossa_ir::Function;

/// The dominator tree of a function's reachable blocks.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each block (entry maps to itself;
    /// unreachable blocks map to `None`).
    idom: EntityVec<Block, Option<Block>>,
    /// Depth in the dominator tree (entry = 0).
    depth: EntityVec<Block, u32>,
    /// Reverse postorder of reachable blocks.
    rpo: Vec<Block>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    rpo_pos: EntityVec<Block, usize>,
    entry: Block,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.num_blocks();
        // The traversal is cached on the `Cfg` so dominators, liveness,
        // and loop analysis share one DFS.
        let rpo = cfg.rpo().to_vec();
        let mut rpo_pos: EntityVec<Block, usize> = EntityVec::filled(n, usize::MAX);
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut idom: EntityVec<Block, Option<Block>> = EntityVec::filled(n, None);
        idom[f.entry] = Some(f.entry);

        let intersect = |idom: &EntityVec<Block, Option<Block>>, mut a: Block, mut b: Block| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a].expect("processed block has idom");
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<Block> = None;
                for &p in cfg.preds(b) {
                    if idom[p].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom != idom[b] {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        let mut depth: EntityVec<Block, u32> = EntityVec::filled(n, 0);
        for &b in &rpo {
            if b != f.entry {
                let d = idom[b].expect("reachable block has idom");
                depth[b] = depth[d] + 1;
            }
        }
        DomTree {
            idom,
            depth,
            rpo,
            rpo_pos,
            entry: f.entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: Block) -> Option<Block> {
        match self.idom[b] {
            Some(d) if b != self.entry => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: Block, mut b: Block) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("has idom");
        }
        a == b
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: Block) -> bool {
        self.idom[b].is_some()
    }

    /// Reverse postorder of the reachable blocks.
    pub fn rpo(&self) -> &[Block] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder (`usize::MAX` if unreachable).
    pub fn rpo_pos(&self, b: Block) -> usize {
        self.rpo_pos[b]
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: Block) -> Vec<Block> {
        self.idom
            .iter()
            .filter_map(|(c, &d)| (d == Some(b) && c != self.entry).then_some(c))
            .collect()
    }

    /// Dominator-tree preorder of reachable blocks.
    pub fn preorder(&self) -> Vec<Block> {
        let mut out = Vec::with_capacity(self.rpo.len());
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            let mut kids = self.children(b);
            kids.sort_by_key(|&c| std::cmp::Reverse(self.rpo_pos[c]));
            stack.extend(kids);
        }
        out
    }
}

/// Reference implementation: dominators by iterative set intersection in
/// O(n²) — used by tests to validate [`DomTree`].
pub fn naive_dominators(f: &Function, cfg: &Cfg) -> EntityVec<Block, BitSet<Block>> {
    let n = f.num_blocks();
    let rpo: Vec<Block> = cfg.rpo().to_vec();
    let mut dom: EntityVec<Block, BitSet<Block>> = EntityVec::filled(n, BitSet::new(n));
    let mut all = BitSet::new(n);
    for &b in &rpo {
        all.insert(b);
    }
    for b in f.blocks() {
        if b == f.entry {
            dom[b].insert(b);
        } else {
            dom[b] = all.clone();
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if b == f.entry {
                continue;
            }
            let mut new = all.clone();
            let mut any_pred = false;
            for &p in cfg.preds(b) {
                if rpo.contains(&p) {
                    any_pred = true;
                    let mut tmp = new.clone();
                    // intersection = new & dom[p]
                    tmp.subtract(&dom[p]);
                    new.subtract(&tmp);
                }
            }
            if !any_pred {
                new.clear();
            }
            new.insert(b);
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    fn irreducible() -> Function {
        // entry -> a, b; a -> b; b -> a (irreducible-ish with exit via a).
        parse(
            "func @irr {
entry:
  %c = input
  br %c, a, b
a:
  br %c, b, exit
b:
  jump a
exit:
  ret %c
}",
        )
    }

    #[test]
    fn entry_dominates_everything() {
        let f = irreducible();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        for b in f.blocks() {
            assert!(dt.dominates(f.entry, b), "{b}");
        }
        assert_eq!(dt.idom(f.entry), None);
    }

    #[test]
    fn diamond_idoms() {
        let f = parse(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  jump exit
r:
  jump exit
exit:
  ret %c
}",
        );
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let bb = |i| Block::new(i);
        assert_eq!(dt.idom(bb(1)), Some(f.entry));
        assert_eq!(dt.idom(bb(2)), Some(f.entry));
        assert_eq!(dt.idom(bb(3)), Some(f.entry)); // join dominated by entry only
        assert!(!dt.dominates(bb(1), bb(3)));
        assert!(dt.strictly_dominates(f.entry, bb(3)));
        assert!(!dt.strictly_dominates(bb(3), bb(3)));
    }

    #[test]
    fn matches_naive_on_irreducible() {
        let f = irreducible();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let naive = naive_dominators(&f, &cfg);
        for a in f.blocks() {
            for b in f.blocks() {
                assert_eq!(
                    dt.dominates(a, b),
                    naive[b].contains(a),
                    "dominates({a}, {b}) mismatch"
                );
            }
        }
    }

    #[test]
    fn unreachable_blocks_are_not_dominated() {
        let f = parse("func @u {\nentry:\n  ret\ndead:\n  ret\n}");
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let dead = Block::new(1);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(f.entry, dead));
        assert!(!dt.dominates(dead, f.entry));
    }

    #[test]
    fn preorder_parents_before_children() {
        let f = irreducible();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let pre = dt.preorder();
        let pos = |b: Block| pre.iter().position(|&x| x == b).unwrap();
        for &b in dt.rpo() {
            if let Some(d) = dt.idom(b) {
                assert!(pos(d) < pos(b));
            }
        }
    }
}
