//! If-conversion to ψ-SSA (paper §5, \[13\]).
//!
//! The ST120 is fully predicated; the LAO represents predicated code with
//! ψ instructions while in SSA form. This pass converts small, side-
//! effect-free diamonds
//!
//! ```text
//!   B:  br c, T, F        T: t1; …; jump J       F: f1; …; jump J
//!   J:  x = φ(T: xt, F: xf); …
//! ```
//!
//! into straight-line predicated code in `B`:
//!
//! ```text
//!   B:  t1; …; f1; …; one = make 1
//!       x = ψ(one ? xf, c ? xt)        ; last satisfied guard wins
//!       jump J
//! ```
//!
//! which later lowers to a two-operand-constrained `psel` chain
//! ([`crate::psi`]) and flows through the ordinary out-of-SSA pipeline.

use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Inst, Var};
use tossa_ir::instr::{InstData, Operand};
use tossa_ir::{Function, Opcode};

/// Limits on what gets if-converted.
#[derive(Clone, Copy, Debug)]
pub struct IfConvOptions {
    /// Maximum instructions hoisted from each arm.
    pub max_arm_insts: usize,
}

impl Default for IfConvOptions {
    fn default() -> Self {
        IfConvOptions { max_arm_insts: 8 }
    }
}

/// Converts every eligible diamond. `f` must be in SSA form. Returns the
/// number of diamonds converted.
pub fn if_convert(f: &mut Function, opts: &IfConvOptions) -> usize {
    let mut converted = 0;
    while let Some(d) = find_diamond(f, opts) {
        convert(f, d);
        converted += 1;
    }
    converted
}

struct Diamond {
    branch: Block,
    cond: Var,
    then_arm: Block,
    else_arm: Block,
    join: Block,
}

/// An arm is hoistable when it is a straight block of side-effect-free,
/// non-φ instructions ending in a jump.
fn hoistable_arm(f: &Function, arm: Block, join: Block, cfg: &Cfg, max: usize) -> bool {
    if cfg.preds(arm).len() != 1 {
        return false;
    }
    let insts: Vec<Inst> = f.block_insts(arm).collect();
    let Some((&last, body)) = insts.split_last() else {
        return false;
    };
    if f.inst(last).opcode != Opcode::Jump || f.inst(last).targets != [join] {
        return false;
    }
    if body.len() > max {
        return false;
    }
    body.iter().all(|&i| {
        let inst = f.inst(i);
        !inst.opcode.has_side_effects()
            && !inst.is_phi()
            && !inst.opcode.is_psi()
            && inst.opcode != Opcode::Load // loads are safe here but kept
                                           // out to mimic a real machine's
                                           // speculation constraints
    })
}

fn find_diamond(f: &Function, opts: &IfConvOptions) -> Option<Diamond> {
    let cfg = Cfg::compute(f);
    for b in f.blocks() {
        let Some(term) = f.terminator(b) else {
            continue;
        };
        let inst = f.inst(term);
        if inst.opcode != Opcode::Br {
            continue;
        }
        let (t, e) = (inst.targets[0], inst.targets[1]);
        if t == e || t == b || e == b {
            continue;
        }
        // Both arms must join at the same block.
        let (tj, ej) = (f.succs(t), f.succs(e));
        if tj.len() != 1 || ej.len() != 1 || tj[0] != ej[0] {
            continue;
        }
        let join = tj[0];
        if join == b || join == t || join == e {
            continue;
        }
        let preds: Vec<Block> = cfg.preds(join).to_vec();
        if preds.len() != 2 {
            continue;
        }
        if !hoistable_arm(f, t, join, &cfg, opts.max_arm_insts)
            || !hoistable_arm(f, e, join, &cfg, opts.max_arm_insts)
        {
            continue;
        }
        return Some(Diamond {
            branch: b,
            cond: inst.uses[0].var,
            then_arm: t,
            else_arm: e,
            join,
        });
    }
    None
}

fn convert(f: &mut Function, d: Diamond) {
    // Remove the branch; remember its position.
    let term = f.terminator(d.branch).expect("br");
    let at = f.block(d.branch).insts.len() - 1;
    f.remove_inst(d.branch, term);

    // Hoist both arms (all but their jumps) into the branch block.
    let mut at = at;
    for arm in [d.then_arm, d.else_arm] {
        let insts: Vec<Inst> = f.block_insts(arm).collect();
        for &i in &insts[..insts.len() - 1] {
            f.remove_inst(arm, i);
            f.block_mut(d.branch).insts.insert(at, i);
            at += 1;
        }
    }

    // Guard for the "else" side: always-true, so the chain reads
    // ψ(one ? else_val, cond ? then_val) — last satisfied wins.
    let one = f.new_var("ptrue");
    f.insert_inst(
        d.branch,
        at,
        InstData::new(Opcode::Make)
            .with_defs(vec![one.into()])
            .with_imm(1),
    );
    at += 1;

    // Replace the join's φs with ψs placed in the branch block.
    for phi in f.phis(d.join).collect::<Vec<_>>() {
        let inst = f.inst(phi);
        let dst = inst.defs[0].var;
        let arg_for = |b: Block| inst.phi_arg_for(b).expect("diamond pred").var;
        let (tv, ev) = (arg_for(d.then_arm), arg_for(d.else_arm));
        f.remove_inst(d.join, phi);
        let psi = InstData::new(Opcode::Psi)
            .with_defs(vec![Operand::new(dst)])
            .with_uses(vec![one.into(), ev.into(), d.cond.into(), tv.into()]);
        f.insert_inst(d.branch, at, psi);
        at += 1;
    }

    // Fall through to the join; the arms become unreachable shells.
    f.push_inst(
        d.branch,
        InstData::new(Opcode::Jump).with_targets(vec![d.join]),
    );
    for arm in [d.then_arm, d.else_arm] {
        f.block_mut(arm).insts.clear();
        f.push_inst(arm, InstData::new(Opcode::Ret));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ssa;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        verify_ssa(&f).unwrap();
        f
    }

    const DIAMOND: &str = "
func @absdiff {
entry:
  %a, %b = input
  %c = cmplt %a, %b
  br %c, l, r
l:
  %d1 = sub %b, %a
  jump m
r:
  %d2 = sub %a, %b
  jump m
m:
  %d = phi [l: %d1], [r: %d2]
  ret %d
}";

    #[test]
    fn converts_diamond_to_psi() {
        let mut f = parse(DIAMOND);
        let src = f.clone();
        assert_eq!(if_convert(&mut f, &IfConvOptions::default()), 1);
        f.validate().unwrap();
        assert!(crate::psi::has_psis(&f));
        assert_eq!(
            f.all_insts().filter(|&(_, i)| f.inst(i).is_phi()).count(),
            0,
            "{f}"
        );
        for (a, b) in [(3, 9), (9, 3), (5, 5), (-4, 4)] {
            assert_eq!(
                interp::run(&src, &[a, b], 1000).unwrap().outputs,
                interp::run(&f, &[a, b], 1000).unwrap().outputs,
                "({a},{b})\n{f}"
            );
        }
    }

    #[test]
    fn converted_code_lowers_and_translates() {
        let mut f = parse(DIAMOND);
        let src = f.clone();
        if_convert(&mut f, &IfConvOptions::default());
        crate::psi::lower_psis(&mut f);
        verify_ssa(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        for (a, b) in [(3, 9), (9, 3)] {
            assert_eq!(
                interp::run(&src, &[a, b], 1000).unwrap().outputs,
                interp::run(&f, &[a, b], 1000).unwrap().outputs
            );
        }
    }

    #[test]
    fn refuses_side_effects() {
        let mut f = parse(
            "
func @store_arm {
entry:
  %a, %b = input
  %c = cmplt %a, %b
  br %c, l, r
l:
  store %a, %b
  jump m
r:
  jump m
m:
  ret %a
}",
        );
        assert_eq!(if_convert(&mut f, &IfConvOptions::default()), 0);
    }

    #[test]
    fn refuses_large_arms() {
        let mut f = parse(DIAMOND);
        assert_eq!(if_convert(&mut f, &IfConvOptions { max_arm_insts: 0 }), 0);
    }

    #[test]
    fn converts_nested_diamonds_iteratively() {
        let mut f = parse(
            "
func @nested {
entry:
  %a, %b = input
  %c1 = cmplt %a, %b
  br %c1, l1, r1
l1:
  %x1 = addi %a, 1
  jump m1
r1:
  %x2 = addi %a, 2
  jump m1
m1:
  %x = phi [l1: %x1], [r1: %x2]
  %c2 = cmplt %x, %b
  br %c2, l2, r2
l2:
  %y1 = addi %x, 10
  jump m2
r2:
  %y2 = addi %x, 20
  jump m2
m2:
  %y = phi [l2: %y1], [r2: %y2]
  ret %y
}",
        );
        let src = f.clone();
        assert_eq!(if_convert(&mut f, &IfConvOptions::default()), 2);
        for (a, b) in [(0, 5), (5, 0), (3, 3)] {
            assert_eq!(
                interp::run(&src, &[a, b], 1000).unwrap().outputs,
                interp::run(&f, &[a, b], 1000).unwrap().outputs
            );
        }
    }
}
