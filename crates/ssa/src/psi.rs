//! ψ-SSA lowering (paper §5, \[13\]).
//!
//! The LAO's predicated code is represented with ψ instructions while in
//! SSA form. Before the out-of-SSA translation, each
//! `X = ψ(p1?a1, …, pn?an)` is lowered to a chain of predicated moves:
//!
//! ```text
//! t0 = make 0
//! t1 = psel p1, a1, t0
//! …
//! X  = psel pn, an, t(n-1)
//! ```
//!
//! Each `psel` carries a two-operand constraint tying its definition to
//! the "else" input — on hardware, a predicated move mutates its
//! destination in place. The constraint is what the paper means by
//! converting to "ψ-conventional" SSA: the collect phase pins the chain
//! to one resource, and the coalescer keeps it copy-free.

use tossa_ir::ids::{Block, Inst};
use tossa_ir::instr::{InstData, Operand};
use tossa_ir::{Function, Opcode};

/// Lowers every ψ instruction in place. Returns the number of ψs lowered.
pub fn lower_psis(f: &mut Function) -> usize {
    let mut count = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        while let Some((pos, psi)) = find_psi(f, b) {
            lower_one(f, b, pos, psi);
            count += 1;
        }
    }
    count
}

fn find_psi(f: &Function, b: Block) -> Option<(usize, Inst)> {
    f.block_insts(b)
        .enumerate()
        .find(|&(_, i)| f.inst(i).opcode.is_psi())
}

fn lower_one(f: &mut Function, b: Block, pos: usize, psi: Inst) {
    let inst = f.inst(psi);
    let def = inst.defs[0].var;
    let pairs: Vec<(Operand, Operand)> = inst.uses.chunks(2).map(|c| (c[0], c[1])).collect();
    f.remove_inst(b, psi);
    // t0 = make 0 (the "no guard satisfied" value).
    let mut cur = f.new_var("psi0");
    let mut at = pos;
    f.insert_inst(
        b,
        at,
        InstData::new(Opcode::Make)
            .with_defs(vec![cur.into()])
            .with_imm(0),
    );
    at += 1;
    for (k, (p, a)) in pairs.iter().enumerate() {
        let dst = if k + 1 == pairs.len() {
            def
        } else {
            f.new_var(format!("psi{}", k + 1))
        };
        f.insert_inst(
            b,
            at,
            InstData::new(Opcode::PSel)
                .with_defs(vec![dst.into()])
                .with_uses(vec![*p, *a, Operand::new(cur)]),
        );
        at += 1;
        cur = dst;
    }
}

/// Returns true if `f` still contains ψ instructions.
pub fn has_psis(f: &Function) -> bool {
    f.all_insts().any(|(_, i)| f.inst(i).opcode.is_psi())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ssa;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn lowering_preserves_semantics() {
        let text = "
func @psi {
entry:
  %p1, %a1, %p2, %a2 = input
  %x = psi %p1 ? %a1, %p2 ? %a2
  ret %x
}";
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        let mut g = f.clone();
        assert_eq!(lower_psis(&mut g), 1);
        assert!(!has_psis(&g));
        g.validate().unwrap();
        verify_ssa(&g).unwrap();
        for ins in [
            [1, 10, 1, 20],
            [1, 10, 0, 20],
            [0, 10, 1, 20],
            [0, 10, 0, 20],
        ] {
            assert_eq!(
                interp::run(&f, &ins, 100).unwrap().outputs,
                interp::run(&g, &ins, 100).unwrap().outputs,
                "{ins:?}"
            );
        }
    }

    #[test]
    fn chain_is_tied() {
        let text = "
func @psi {
entry:
  %p1, %a1, %p2, %a2 = input
  %x = psi %p1 ? %a1, %p2 ? %a2
  ret %x
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        lower_psis(&mut f);
        let psels: Vec<_> = f
            .all_insts()
            .filter(|&(_, i)| f.inst(i).opcode == Opcode::PSel)
            .map(|(_, i)| i)
            .collect();
        assert_eq!(psels.len(), 2);
        // Each psel's tied use (index 2) is the previous link.
        assert_eq!(Opcode::PSel.tied_use(), Some(2));
        let first_def = f.inst(psels[0]).defs[0].var;
        assert_eq!(f.inst(psels[1]).uses[2].var, first_def);
    }

    #[test]
    fn lowers_multiple_psis() {
        let text = "
func @two {
entry:
  %p, %a, %b = input
  %x = psi %p ? %a, %p ? %b
  %y = psi %p ? %x, %p ? %a
  ret %y
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        assert_eq!(lower_psis(&mut f), 2);
        f.validate().unwrap();
        verify_ssa(&f).unwrap();
    }
}
