//! SSA construction: Cytron et al. φ placement on iterated dominance
//! frontiers, pruned by liveness (the paper uses pruned SSA \[4\]), followed
//! by renaming along the dominator tree.

use tossa_analysis::{DomFrontiers, DomTree, Liveness};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, EntityVec, Inst, Var};
use tossa_ir::instr::{InstData, Operand};
use tossa_ir::{Function, Opcode};

/// Converts `f` (arbitrary multiple-assignment code) into pruned SSA form
/// in place.
///
/// Every inserted φ and every renamed definition produces a fresh variable
/// whose [`origin`](tossa_ir::function::VarData::origin) points at the
/// pre-SSA variable — constraint collection later uses this to find the
/// web of a dedicated register such as `SP`.
///
/// Uses reachable only along paths with no prior definition keep the
/// original variable (executing them traps in the interpreter, as
/// before).
/// # Panics
/// Panics if `f` already contains φ instructions: construction renames
/// from scratch and does not merge with pre-existing φs.
pub fn to_ssa(f: &mut Function) {
    assert!(
        !has_phis(f),
        "to_ssa input must not contain φ instructions (function {})",
        f.name
    );
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    let df = DomFrontiers::compute(f, &cfg, &dt);
    let live = Liveness::compute(f, &cfg);
    let num_orig = f.num_vars();

    // Definition blocks per variable.
    let mut def_blocks: EntityVec<Var, Vec<Block>> = EntityVec::filled(num_orig, Vec::new());
    for (b, i) in f.all_insts().collect::<Vec<_>>() {
        for d in f.inst(i).defs.to_vec() {
            if !def_blocks[d.var].contains(&b) {
                def_blocks[d.var].push(b);
            }
        }
    }

    // φ insertion on the pruned iterated dominance frontier.
    let mut phi_orig: Vec<(Inst, Var)> = Vec::new();
    for v in (0..num_orig).map(Var::new) {
        if def_blocks[v].is_empty() {
            continue;
        }
        let seeds: Vec<Block> = def_blocks[v]
            .iter()
            .copied()
            .filter(|&b| dt.is_reachable(b))
            .collect();
        for join in df.iterated(seeds) {
            // Pruned SSA: only where the variable is live-in.
            if !live.live_in(join).contains(v) {
                continue;
            }
            let mut preds: Vec<Block> = cfg.preds(join).to_vec();
            preds.sort();
            preds.dedup();
            let inst = InstData::phi(v, preds.into_iter().map(|p| (p, v)).collect());
            let id = f.insert_inst(join, 0, inst);
            phi_orig.push((id, v));
        }
    }
    let phi_orig_of = |i: Inst| phi_orig.iter().find(|&&(pi, _)| pi == i).map(|&(_, v)| v);

    // Renaming along the dominator tree (iterative, enter/exit events).
    let mut stacks: EntityVec<Var, Vec<Var>> = EntityVec::filled(num_orig, Vec::new());
    enum Event {
        Enter(Block),
        Exit(Block),
    }
    let mut events = vec![Event::Enter(f.entry)];
    // Track per-block how many pushes to undo at exit.
    let mut pushed: Vec<Vec<Var>> = vec![Vec::new(); f.num_blocks()];

    while let Some(ev) = events.pop() {
        match ev {
            Event::Enter(b) => {
                events.push(Event::Exit(b));
                let insts: Vec<Inst> = f.block_insts(b).collect();
                for i in insts {
                    let is_phi = f.inst(i).is_phi();
                    if !is_phi {
                        // Rewrite uses to the current version.
                        let uses = f.inst(i).uses.to_vec();
                        for (k, op) in uses.iter().enumerate() {
                            if op.var.index() < num_orig {
                                if let Some(&top) = stacks[op.var].last() {
                                    f.inst_mut(i).uses[k].var = top;
                                }
                            }
                        }
                    }
                    // Rewrite defs to fresh versions.
                    let defs = f.inst(i).defs.to_vec();
                    for (k, op) in defs.iter().enumerate() {
                        if op.var.index() < num_orig {
                            let new = f.new_var_version(op.var);
                            stacks[op.var].push(new);
                            pushed[b.index()].push(op.var);
                            f.inst_mut(i).defs[k].var = new;
                        }
                    }
                }
                // Fill φ arguments of successors for the edge b -> s.
                for s in f.succs(b).to_vec() {
                    for phi in f.phis(s).collect::<Vec<_>>() {
                        let Some(orig) = phi_orig_of(phi) else {
                            continue;
                        };
                        let Some(&top) = stacks[orig].last() else {
                            continue;
                        };
                        let slots: Vec<usize> = f
                            .inst(phi)
                            .phi_preds
                            .iter()
                            .enumerate()
                            .filter_map(|(k, &p)| (p == b).then_some(k))
                            .collect();
                        for k in slots {
                            f.inst_mut(phi).uses[k].var = top;
                        }
                    }
                }
                // Recurse into dominator-tree children.
                let mut kids = dt.children(b);
                kids.sort_by_key(|&c| std::cmp::Reverse(dt.rpo_pos(c)));
                for c in kids {
                    events.push(Event::Enter(c));
                }
            }
            Event::Exit(b) => {
                for v in pushed[b.index()].drain(..) {
                    stacks[v].pop();
                }
            }
        }
    }
}

/// Returns true if `f` contains at least one φ.
pub fn has_phis(f: &Function) -> bool {
    f.all_insts().any(|(_, i)| f.inst(i).is_phi())
}

/// Counts the φ instructions of `f`.
pub fn count_phis(f: &Function) -> usize {
    f.all_insts().filter(|&(_, i)| f.inst(i).is_phi()).count()
}

/// Counts φ argument slots (the naive copy count of a φ replacement).
pub fn count_phi_args(f: &Function) -> usize {
    f.all_insts()
        .filter(|&(_, i)| f.inst(i).is_phi())
        .map(|(_, i)| f.inst(i).uses.len())
        .sum()
}

/// Removes unreachable blocks' instructions (keeps empty `ret` so the
/// validator stays happy) — a cleanup used after CFG surgery in tests.
pub fn trim_unreachable(f: &mut Function) {
    let reach = tossa_ir::cfg::reachable(f);
    for b in f.blocks().collect::<Vec<_>>() {
        if !reach[b.index()] {
            f.block_mut(b).insts.clear();
            f.push_inst(
                b,
                InstData::new(Opcode::Ret).with_uses(Vec::<Operand>::new()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ssa;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn ssa_of(text: &str) -> (Function, Function) {
        let before = parse_function(text, &Machine::dsp32()).unwrap();
        before.validate().unwrap();
        let mut after = before.clone();
        to_ssa(&mut after);
        after.validate().unwrap_or_else(|e| panic!("{e}\n{after}"));
        verify_ssa(&after).unwrap_or_else(|e| panic!("{e}\n{after}"));
        (before, after)
    }

    #[test]
    fn straightline_multiple_defs_get_versions() {
        let (_, f) = ssa_of(
            "func @s {
entry:
  %x = make 1
  %x = addi %x, 2
  %x = addi %x, 3
  ret %x
}",
        );
        assert_eq!(count_phis(&f), 0);
        // Three defs -> three distinct versions.
        let r = interp::run(&f, &[], 100).unwrap();
        assert_eq!(r.outputs, vec![6]);
    }

    #[test]
    fn diamond_gets_one_phi() {
        let (before, f) = ssa_of(
            "func @d {
entry:
  %c = input
  %x = make 0
  br %c, l, r
l:
  %x = make 1
  jump m
r:
  %x = make 2
  jump m
m:
  ret %x
}",
        );
        assert_eq!(count_phis(&f), 1);
        for c in [0, 1] {
            assert_eq!(
                interp::run(&before, &[c], 100).unwrap().outputs,
                interp::run(&f, &[c], 100).unwrap().outputs
            );
        }
    }

    #[test]
    fn pruned_no_phi_for_dead_variable() {
        let (_, f) = ssa_of(
            "func @p {
entry:
  %c = input
  %x = make 0
  %y = make 9
  br %c, l, r
l:
  %x = make 1
  jump m
r:
  %x = make 2
  jump m
m:
  ret %y
}",
        );
        // x is dead at m: pruned SSA inserts no φ at all.
        assert_eq!(count_phis(&f), 0);
    }

    #[test]
    fn loop_phis_and_equivalence() {
        let text = "
func @sum {
entry:
  %n = input
  %i = make 0
  %acc = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %acc = add %acc, %i
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}";
        let (before, f) = ssa_of(text);
        // φs for i and acc at head.
        assert_eq!(count_phis(&f), 2);
        for n in [0, 1, 5, 10] {
            assert_eq!(
                interp::run(&before, &[n], 10_000).unwrap().outputs,
                interp::run(&f, &[n], 10_000).unwrap().outputs,
                "n={n}"
            );
        }
    }

    #[test]
    fn phi_arg_counts() {
        let (_, f) = ssa_of(
            "func @c {
entry:
  %c = input
  %x = make 0
  br %c, l, r
l:
  %x = make 1
  jump m
r:
  %x = make 2
  jump m
m:
  ret %x
}",
        );
        assert!(has_phis(&f));
        assert_eq!(count_phis(&f), 1);
        assert_eq!(count_phi_args(&f), 2);
    }

    #[test]
    fn trim_unreachable_clears_dead_blocks() {
        let mut f = parse_function(
            "func @t {\nentry:\n  ret\ndead:\n  %x = make 1\n  ret %x\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        trim_unreachable(&mut f);
        f.validate().unwrap();
        let dead = tossa_ir::ids::Block::new(1);
        assert_eq!(f.block_insts(dead).count(), 1);
    }

    #[test]
    fn versions_record_origin() {
        let (_, f) = ssa_of(
            "func @o {
entry:
  %x = make 1
  %x = addi %x, 1
  ret %x
}",
        );
        let versions: Vec<Var> = f
            .vars()
            .filter(|&v| f.var(v).origin == Some(Var::new(0)))
            .collect();
        assert_eq!(versions.len(), 2);
        for v in versions {
            assert_eq!(f.var(v).name, "x");
        }
    }

    #[test]
    fn nested_loop_equivalence() {
        let text = "
func @nest {
entry:
  %n = input
  %i = make 0
  %s = make 0
  jump oh
oh:
  %ci = cmplt %i, %n
  br %ci, obody, exit
obody:
  %j = make 0
  jump ih
ih:
  %cj = cmplt %j, %i
  br %cj, ibody, olatch
ibody:
  %s = add %s, %j
  %j = addi %j, 1
  jump ih
olatch:
  %i = addi %i, 1
  jump oh
exit:
  ret %s
}";
        let (before, f) = ssa_of(text);
        for n in [0, 3, 6] {
            assert_eq!(
                interp::run(&before, &[n], 100_000).unwrap().outputs,
                interp::run(&f, &[n], 100_000).unwrap().outputs
            );
        }
    }
}
