//! SSA-level optimizations: copy propagation, dead-code elimination, and
//! dominator-scoped global value numbering.
//!
//! These are the transformations the paper's introduction warns about:
//! "this replacement must be performed carefully whenever optimizations
//! such as value numbering have been done while in SSA form" — they
//! extend live ranges and merge values, creating the interferences the
//! out-of-SSA coalescer must then negotiate.

use std::collections::HashMap;
use tossa_analysis::DomTree;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Inst, Var};
use tossa_ir::{Function, Opcode};

/// Replaces every use of a copy destination by the copy source
/// (transitively) and leaves the now-dead `mov`s for [`dce`]. Returns the
/// number of uses rewritten.
pub fn copy_propagate(f: &mut Function) -> usize {
    // d -> s for every `d = mov s`.
    let mut alias: HashMap<Var, Var> = HashMap::new();
    for (_, i) in f.all_insts().collect::<Vec<_>>() {
        let inst = f.inst(i);
        if inst.opcode.is_move() {
            alias.insert(inst.defs[0].var, inst.uses[0].var);
        }
    }
    fn resolve(alias: &HashMap<Var, Var>, mut v: Var) -> Var {
        let mut hops = 0;
        while let Some(&s) = alias.get(&v) {
            v = s;
            hops += 1;
            if hops > alias.len() {
                break; // defensive: cyclic moves cannot occur in SSA
            }
        }
        v
    }
    let mut rewritten = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        for i in f.block_insts(b).collect::<Vec<_>>() {
            let n = f.inst(i).uses.len();
            for k in 0..n {
                let v = f.inst(i).uses[k].var;
                let r = resolve(&alias, v);
                if r != v {
                    f.inst_mut(i).uses[k].var = r;
                    rewritten += 1;
                }
            }
        }
    }
    rewritten
}

/// Dead-code elimination: removes instructions without side effects whose
/// definitions are never used (transitively). Returns the number of
/// instructions removed.
pub fn dce(f: &mut Function) -> usize {
    // Mark pass: seed with side-effecting instructions.
    let all: Vec<(tossa_ir::Block, Inst)> = f.all_insts().collect();
    let mut live_insts: HashMap<Inst, bool> = all
        .iter()
        .map(|&(_, i)| (i, f.inst(i).opcode.has_side_effects()))
        .collect();
    let mut def_of: HashMap<Var, Inst> = HashMap::new();
    for &(_, i) in &all {
        for d in f.inst(i).defs {
            def_of.insert(d.var, i);
        }
    }
    let mut work: Vec<Inst> = all
        .iter()
        .filter(|&&(_, i)| live_insts[&i])
        .map(|&(_, i)| i)
        .collect();
    while let Some(i) = work.pop() {
        for u in f.inst(i).uses.to_vec() {
            if let Some(&di) = def_of.get(&u.var) {
                if let Some(flag) = live_insts.get_mut(&di) {
                    if !*flag {
                        *flag = true;
                        work.push(di);
                    }
                }
            }
        }
    }
    // Sweep.
    let mut removed = 0;
    for (b, i) in all {
        if !live_insts[&i] {
            f.remove_inst(b, i);
            removed += 1;
        }
    }
    removed
}

/// Dominator-scoped value numbering: two pure instructions computing the
/// same (opcode, operands, immediate) in a dominating position are merged.
/// Returns the number of instructions eliminated.
pub fn gvn(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Key {
        opcode: Opcode,
        uses: Vec<Var>,
        imm: i64,
    }

    fn pure(op: Opcode) -> bool {
        matches!(
            op,
            Opcode::Make
                | Opcode::More
                | Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Neg
                | Opcode::Not
                | Opcode::AddImm
                | Opcode::AutoAdd
                | Opcode::CmpEq
                | Opcode::CmpNe
                | Opcode::CmpLt
                | Opcode::CmpLe
                | Opcode::Select
                | Opcode::PSel
        )
    }

    let mut replacement: HashMap<Var, Var> = HashMap::new();
    let mut table: HashMap<Key, Var> = HashMap::new();
    let mut scopes: Vec<Vec<Key>> = Vec::new();
    let mut dead: Vec<(tossa_ir::Block, Inst)> = Vec::new();

    enum Event {
        Enter(tossa_ir::Block),
        Exit,
    }
    let mut events = vec![Event::Enter(f.entry)];
    while let Some(ev) = events.pop() {
        match ev {
            Event::Enter(b) => {
                events.push(Event::Exit);
                scopes.push(Vec::new());
                for i in f.block_insts(b).collect::<Vec<_>>() {
                    // Resolve uses through prior replacements first.
                    let n = f.inst(i).uses.len();
                    for k in 0..n {
                        let v = f.inst(i).uses[k].var;
                        if let Some(&r) = replacement.get(&v) {
                            f.inst_mut(i).uses[k].var = r;
                        }
                    }
                    let inst = f.inst(i);
                    if !pure(inst.opcode) || inst.defs.len() != 1 {
                        continue;
                    }
                    let mut uses: Vec<Var> = inst.uses.iter().map(|o| o.var).collect();
                    // Commutative normalization.
                    if matches!(
                        inst.opcode,
                        Opcode::Add | Opcode::Mul | Opcode::And | Opcode::Or | Opcode::Xor
                    ) {
                        uses.sort();
                    }
                    let key = Key {
                        opcode: inst.opcode,
                        uses,
                        imm: inst.imm,
                    };
                    match table.get(&key) {
                        Some(&existing) => {
                            replacement.insert(inst.defs[0].var, existing);
                            dead.push((b, i));
                        }
                        None => {
                            table.insert(key.clone(), inst.defs[0].var);
                            scopes.last_mut().expect("scope").push(key);
                        }
                    }
                }
                let mut kids = dt.children(b);
                kids.sort_by_key(|&c| std::cmp::Reverse(dt.rpo_pos(c)));
                for c in kids {
                    events.push(Event::Enter(c));
                }
            }
            Event::Exit => {
                for key in scopes.pop().expect("scope") {
                    table.remove(&key);
                }
            }
        }
    }

    // Apply replacements everywhere (φ args in not-yet-visited blocks).
    if !replacement.is_empty() {
        // rewrite_vars also remaps the defs of the replaced instructions
        // themselves; harmless, they are removed below.
        f.rewrite_vars(|v| {
            let mut v = v;
            while let Some(&r) = replacement.get(&v) {
                v = r;
            }
            v
        });
    }
    let removed = dead.len();
    for (b, i) in dead {
        f.remove_inst(b, i);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ssa;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        f
    }

    #[test]
    fn copy_prop_then_dce_removes_moves() {
        let mut f = parse(
            "func @c {
entry:
  %a = make 1
  %b = mov %a
  %c = mov %b
  %d = addi %c, 1
  ret %d
}",
        );
        let before = interp::run(&f, &[], 100).unwrap();
        assert!(copy_propagate(&mut f) >= 1);
        let removed = dce(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.count_moves(), 0);
        assert_eq!(interp::run(&f, &[], 100).unwrap().outputs, before.outputs);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut f = parse(
            "func @s {
entry:
  %p = input
  %dead = make 7
  store %p, %p
  ret
}",
        );
        let removed = dce(&mut f);
        assert_eq!(removed, 1); // only %dead
        assert_eq!(f.block_insts(f.entry).count(), 3);
    }

    #[test]
    fn gvn_merges_redundant_computation() {
        let mut f = parse(
            "func @g {
entry:
  %a, %b = input
  %x = add %a, %b
  %y = add %b, %a
  %z = mul %x, %y
  ret %z
}",
        );
        let before = interp::run(&f, &[3, 4], 100).unwrap();
        let n = gvn(&mut f);
        assert_eq!(n, 1); // commutative match
        assert_eq!(
            interp::run(&f, &[3, 4], 100).unwrap().outputs,
            before.outputs
        );
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn gvn_respects_dominance_scoping() {
        // The same expression in two sibling branches must NOT be merged.
        let mut f = parse(
            "func @sib {
entry:
  %c, %a = input
  br %c, l, r
l:
  %x = addi %a, 5
  jump m
r:
  %y = addi %a, 5
  jump m
m:
  %z = phi [l: %x], [r: %y]
  ret %z
}",
        );
        let n = gvn(&mut f);
        assert_eq!(n, 0);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn gvn_merges_across_dominance() {
        let mut f = parse(
            "func @dom {
entry:
  %c, %a = input
  %x = addi %a, 5
  br %c, l, m
l:
  %y = addi %a, 5
  jump m
m:
  ret %x
}",
        );
        let before = interp::run(&f, &[1, 2], 100).unwrap();
        let n = gvn(&mut f);
        assert_eq!(n, 1);
        dce(&mut f);
        assert_eq!(
            interp::run(&f, &[1, 2], 100).unwrap().outputs,
            before.outputs
        );
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn gvn_does_not_merge_loads() {
        let mut f = parse(
            "func @mem {
entry:
  %p = input
  %v1 = load %p
  store %p, %v1
  %v2 = load %p
  %s = add %v1, %v2
  ret %s
}",
        );
        assert_eq!(gvn(&mut f), 0);
    }
}
