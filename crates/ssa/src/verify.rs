//! SSA and CSSA form verifiers.

use std::fmt;
use tossa_analysis::{DefMap, DomTree, LiveAtDefs, Liveness};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Var};
use tossa_ir::machine::RegClass;
use tossa_ir::Function;

/// A violation of SSA invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsaError {
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SsaError {}

/// Checks that `f` is in valid SSA form:
///
/// * every variable has at most one definition;
/// * every (reachable) non-φ use is dominated by its definition;
/// * every φ argument's definition dominates the end of the corresponding
///   predecessor block;
/// * no use of a never-defined variable in reachable code.
///
/// Variables carrying a dedicated (special-class) register identity, such
/// as `SP`, are live-in at function entry with a well-defined incoming
/// value (mirroring the interpreter), so an undefined use of one is
/// legal: it reads the incoming register value.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_ssa(f: &Function) -> Result<(), SsaError> {
    let err = |m: String| Err(SsaError { message: m });
    // Single definitions.
    let mut seen = vec![false; f.num_vars()];
    for (_, i) in f.all_insts() {
        for d in f.inst(i).defs {
            if seen[d.var.index()] {
                return err(format!("{} has multiple definitions", d.var));
            }
            seen[d.var.index()] = true;
        }
    }

    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    let defs = DefMap::compute(f);

    // Dedicated registers (SP, LR) hold a well-defined value on entry, so
    // a use with no def site reads the incoming register value.
    let entry_live = |v: Var| -> bool {
        f.var(v)
            .reg
            .is_some_and(|r| f.machine.reg_class(r) == RegClass::Special)
    };

    let def_dominates_point = |v: Var, b: Block, pos: usize| -> bool {
        match defs.site(v) {
            None => false,
            Some(site) => {
                if site.block == b {
                    site.pos < pos
                } else {
                    dt.strictly_dominates(site.block, b)
                }
            }
        }
    };

    for b in f.blocks() {
        if !dt.is_reachable(b) {
            continue;
        }
        for (pos, i) in f.block_insts(b).enumerate() {
            let inst = f.inst(i);
            if inst.is_phi() {
                for (k, op) in inst.uses.iter().enumerate() {
                    let pred = inst.phi_preds[k];
                    if !dt.is_reachable(pred) {
                        continue; // the edge can never execute
                    }
                    let Some(site) = defs.site(op.var) else {
                        if entry_live(op.var) {
                            continue;
                        }
                        return err(format!("phi arg {} (from {pred}) is never defined", op.var));
                    };
                    // Must dominate the end of pred.
                    if !dt.dominates(site.block, pred) {
                        return err(format!(
                            "phi arg {} def in {} does not dominate pred {pred} exit",
                            op.var, site.block
                        ));
                    }
                }
            } else {
                for op in inst.uses {
                    if defs.site(op.var).is_none() {
                        if entry_live(op.var) {
                            continue;
                        }
                        return err(format!("{} used in {b} but never defined", op.var));
                    }
                    if !def_dominates_point(op.var, b, pos) {
                        return err(format!(
                            "use of {} at {b}:{pos} not dominated by its definition",
                            op.var
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks that `f` is in *conventional* SSA (CSSA): valid SSA whose
/// φ-congruence classes (the transitive closure of {φ def} ∪ {φ args}
/// across all φs) are interference-free — the invariant Sreedhar et
/// al.'s conversion establishes and the pinning-based coalescer relies
/// on when replacing a whole class by one name.
///
/// Interference is exact live-range interference: two variables
/// interfere when one is live after the other's definition, when they
/// are defined by one instruction, or when both are φ definitions of one
/// block (parallel φ semantics).
///
/// # Errors
/// Returns the SSA violation or the first interfering class pair.
pub fn verify_cssa(f: &Function) -> Result<(), SsaError> {
    verify_ssa(f)?;

    // φ-congruence classes by union-find.
    let n = f.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for (_, i) in f.all_insts() {
        let inst = f.inst(i);
        if inst.is_phi() {
            let d = find(&mut parent, inst.defs[0].var.index());
            for u in inst.uses {
                let a = find(&mut parent, u.var.index());
                parent[a] = d;
            }
        }
    }
    let mut classes: std::collections::HashMap<usize, Vec<Var>> = std::collections::HashMap::new();
    for v in f.vars() {
        let r = find(&mut parent, v.index());
        classes.entry(r).or_default().push(v);
    }
    classes.retain(|_, members| members.len() >= 2);

    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    let defs = DefMap::compute(f);
    let lad = LiveAtDefs::compute(f, &live, &defs);
    let interferes = |x: Var, y: Var| -> bool {
        let (Some(sx), Some(sy)) = (defs.site(x), defs.site(y)) else {
            return false;
        };
        if sx.inst == sy.inst {
            return true;
        }
        lad.after_def(y).is_some_and(|s| s.contains(x))
            || lad.after_def(x).is_some_and(|s| s.contains(y))
            || (sx.block == sy.block && sx.is_phi && sy.is_phi)
    };
    for members in classes.values() {
        for (k, &x) in members.iter().enumerate() {
            for &y in &members[k + 1..] {
                if interferes(x, y) {
                    return Err(SsaError {
                        message: format!(
                            "not CSSA: φ-congruence class members {x} and {y} interfere"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    #[test]
    fn accepts_valid_ssa() {
        let f = parse(
            "func @v {
entry:
  %a = make 1
  %b = addi %a, 2
  ret %b
}",
        );
        assert!(verify_ssa(&f).is_ok());
    }

    #[test]
    fn rejects_double_definition() {
        let f = parse(
            "func @d {
entry:
  %a = make 1
  %a = make 2
  ret %a
}",
        );
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("multiple definitions"), "{e}");
    }

    #[test]
    fn rejects_use_not_dominated() {
        let f = parse(
            "func @u {
entry:
  %c = input
  br %c, l, m
l:
  %x = make 1
  jump m
m:
  ret %x
}",
        );
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_undefined_use() {
        let f = parse("func @z {\nentry:\n  ret %ghost\n}");
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("never defined"), "{e}");
    }

    #[test]
    fn phi_arg_must_dominate_pred_exit() {
        // x defined only in r, but claimed to flow in from l.
        let f = parse(
            "func @p {
entry:
  %c = input
  br %c, l, r
l:
  jump m
r:
  %x = make 2
  jump m
m:
  %y = phi [l: %x], [r: %x]
  ret %y
}",
        );
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("does not dominate pred"), "{e}");
    }

    #[test]
    fn cssa_accepts_disjoint_phi_webs() {
        // The classic diamond: a and b die into the φ; the class
        // {x, a, b} is interference-free.
        let f = parse(
            "func @c {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        verify_cssa(&f).unwrap();
    }

    #[test]
    fn cssa_rejects_interfering_class() {
        // a stays live past the φ (returned alongside x), so {x, a, b}
        // is not interference-free: valid SSA but not CSSA.
        let f = parse(
            "func @t {
entry:
  %a = make 1
  %b = make 2
  %c = input
  br %c, l, r
l:
  jump m
r:
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x, %a
}",
        );
        verify_ssa(&f).unwrap();
        let e = verify_cssa(&f).unwrap_err();
        assert!(e.message.contains("not CSSA"), "{e}");
    }

    #[test]
    fn cssa_rejects_swap_phis() {
        // Two φs of one block exchanging values: their args are live out
        // of the latch simultaneously, and the lost-copy/swap web
        // {x, y, a, b} collapses into one class that self-interferes.
        let f = parse(
            "func @s {
entry:
  %a, %b, %n = input
  %z = make 0
  jump head
head:
  %x = phi [entry: %a], [latch: %y]
  %y = phi [entry: %b], [latch: %x]
  %i = phi [entry: %z], [latch: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x, %y
}",
        );
        let e = verify_cssa(&f).unwrap_err();
        assert!(e.message.contains("not CSSA"), "{e}");
    }

    #[test]
    fn phi_def_dominates_same_block_uses() {
        let f = parse(
            "func @ok {
entry:
  %a = make 1
  jump m
m:
  %x = phi [entry: %a]
  %y = addi %x, 1
  ret %y
}",
        );
        assert!(verify_ssa(&f).is_ok());
    }
}
