//! SSA form verifier.

use std::fmt;
use tossa_analysis::{DefMap, DomTree};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Var};
use tossa_ir::Function;

/// A violation of SSA invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsaError {
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SsaError {}

/// Checks that `f` is in valid SSA form:
///
/// * every variable has at most one definition;
/// * every (reachable) non-φ use is dominated by its definition;
/// * every φ argument's definition dominates the end of the corresponding
///   predecessor block;
/// * no use of a never-defined variable in reachable code.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_ssa(f: &Function) -> Result<(), SsaError> {
    let err = |m: String| Err(SsaError { message: m });
    // Single definitions.
    let mut seen = vec![false; f.num_vars()];
    for (_, i) in f.all_insts() {
        for d in &f.inst(i).defs {
            if seen[d.var.index()] {
                return err(format!("{} has multiple definitions", d.var));
            }
            seen[d.var.index()] = true;
        }
    }

    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    let defs = DefMap::compute(f);

    let def_dominates_point = |v: Var, b: Block, pos: usize| -> bool {
        match defs.site(v) {
            None => false,
            Some(site) => {
                if site.block == b {
                    site.pos < pos
                } else {
                    dt.strictly_dominates(site.block, b)
                }
            }
        }
    };

    for b in f.blocks() {
        if !dt.is_reachable(b) {
            continue;
        }
        for (pos, i) in f.block_insts(b).enumerate() {
            let inst = f.inst(i);
            if inst.is_phi() {
                for (k, op) in inst.uses.iter().enumerate() {
                    let pred = inst.phi_preds[k];
                    if !dt.is_reachable(pred) {
                        continue; // the edge can never execute
                    }
                    let Some(site) = defs.site(op.var) else {
                        return err(format!("phi arg {} (from {pred}) is never defined", op.var));
                    };
                    // Must dominate the end of pred.
                    if !dt.dominates(site.block, pred) {
                        return err(format!(
                            "phi arg {} def in {} does not dominate pred {pred} exit",
                            op.var, site.block
                        ));
                    }
                }
            } else {
                for op in &inst.uses {
                    if defs.site(op.var).is_none() {
                        return err(format!("{} used in {b} but never defined", op.var));
                    }
                    if !def_dominates_point(op.var, b, pos) {
                        return err(format!(
                            "use of {} at {b}:{pos} not dominated by its definition",
                            op.var
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    #[test]
    fn accepts_valid_ssa() {
        let f = parse(
            "func @v {
entry:
  %a = make 1
  %b = addi %a, 2
  ret %b
}",
        );
        assert!(verify_ssa(&f).is_ok());
    }

    #[test]
    fn rejects_double_definition() {
        let f = parse(
            "func @d {
entry:
  %a = make 1
  %a = make 2
  ret %a
}",
        );
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("multiple definitions"), "{e}");
    }

    #[test]
    fn rejects_use_not_dominated() {
        let f = parse(
            "func @u {
entry:
  %c = input
  br %c, l, m
l:
  %x = make 1
  jump m
m:
  ret %x
}",
        );
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_undefined_use() {
        let f = parse("func @z {\nentry:\n  ret %ghost\n}");
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("never defined"), "{e}");
    }

    #[test]
    fn phi_arg_must_dominate_pred_exit() {
        // x defined only in r, but claimed to flow in from l.
        let f = parse(
            "func @p {
entry:
  %c = input
  br %c, l, r
l:
  jump m
r:
  %x = make 2
  jump m
m:
  %y = phi [l: %x], [r: %x]
  ret %y
}",
        );
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("does not dominate pred"), "{e}");
    }

    #[test]
    fn phi_def_dominates_same_block_uses() {
        let f = parse(
            "func @ok {
entry:
  %a = make 1
  jump m
m:
  %x = phi [entry: %a]
  %y = addi %x, 1
  ret %y
}",
        );
        assert!(verify_ssa(&f).is_ok());
    }
}
