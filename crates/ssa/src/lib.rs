//! # tossa-ssa — SSA construction, verification, and SSA-level passes
//!
//! * [`construct::to_ssa`] — pruned SSA construction (Cytron et al. \[4\]);
//! * [`verify::verify_ssa`] / [`verify::verify_cssa`] — SSA and
//!   conventional-SSA (interference-free φ-congruence class) checkers;
//! * [`opt`] — copy propagation, DCE, and dominator-scoped value
//!   numbering (the optimizations whose interaction with out-of-SSA the
//!   paper studies);
//! * [`ifconv`] — if-conversion of small diamonds to ψ instructions
//!   (the predicated code the ST120's full predication produces);
//! * [`psi`] — ψ-SSA lowering to two-operand-constrained predicated
//!   moves (ψ-conventional form, paper §5).

#![warn(missing_docs)]

pub mod construct;
pub mod ifconv;
pub mod opt;
pub mod psi;
pub mod verify;

pub use construct::to_ssa;
pub use verify::{verify_cssa, verify_ssa};
