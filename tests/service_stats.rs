//! Golden tests for the service telemetry surface (PR 10): the closed
//! metric name set, the `tossa-service-stats/1` stats document, the
//! Prometheus exposition, the flight-recorder lifecycle trail, and the
//! reconciliation identities that tie every histogram back to the
//! [`JobCounter`] totals. Names and schema fields pinned here are wire
//! format — dashboards and the CI smoke grep for them verbatim, so a
//! rename must fail a test before it reaches a scrape.

use std::collections::BTreeSet;

use tossa::bench::checked::fuzz_suite;
use tossa::server::proto::default_inputs;
use tossa::server::report::JobReport;
use tossa::server::service::{CompileService, Job, ServiceConfig};
use tossa::server::{ChaosConfig, JobRequest, ServiceMetrics, FLIGHT_STAGES};
use tossa::trace::json::{parse_json, Json};
use tossa::trace::service::{JobCounter, JobCounterSet};

const SEED: u64 = 0x0005_7A75;

fn jobs(n: usize) -> Vec<Job> {
    fuzz_suite(n, SEED)
        .functions
        .into_iter()
        .enumerate()
        .map(|(k, bf)| {
            let id = k as u64 + 1;
            let inputs = default_inputs(&bf.func, id);
            Job {
                req: JobRequest {
                    id,
                    func: bf.func,
                    experiment: None,
                    inputs,
                    inputs_seed: Some(id),
                },
                generator_seed: Some(SEED.wrapping_add(k as u64)),
            }
        })
        .collect()
}

/// `run_batch`, but keeping the telemetry handle alive past shutdown
/// so the tests can interrogate the final instrument state.
fn run_instrumented(
    config: ServiceConfig,
    jobs: Vec<Job>,
) -> (
    Vec<JobReport>,
    JobCounterSet,
    std::sync::Arc<ServiceMetrics>,
) {
    let (service, rx) = CompileService::start(config);
    let metrics = service.metrics();
    let collector = std::thread::spawn(move || {
        let mut reports: Vec<JobReport> = rx.iter().collect();
        reports.sort_by_key(|r| r.id);
        reports
    });
    for job in jobs {
        service.submit(job);
    }
    let counters = service.shutdown();
    let reports = collector.join().unwrap_or_default();
    (reports, counters, metrics)
}

fn chaos_config() -> ServiceConfig {
    ServiceConfig {
        queue_cap: 64,
        chaos: Some(ChaosConfig {
            seed: 0xC4A0_5EED,
            rate_pct: 30,
        }),
        budget: tossa::server::Budget {
            deadline: std::time::Duration::from_secs(1),
            ..Default::default()
        },
        ..ServiceConfig::default()
    }
}

fn hist_count(doc: &Json, full_name: &str) -> u64 {
    doc.get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get(full_name))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats lacks histogram {full_name:?}"))
}

/// The complete instrument set, by full name. Wire format: the CI
/// smoke and the EXPERIMENTS.md walkthrough grep for these strings.
#[test]
fn metric_name_set_is_pinned_and_closed() {
    let (_, _, metrics) = run_instrumented(ServiceConfig::default(), jobs(8));
    let got: BTreeSet<String> = metrics
        .snapshot()
        .metrics
        .iter()
        .map(|m| m.full_name())
        .collect();
    let want: BTreeSet<String> = [
        "service_alloc_bytes",
        "service_alloc_events",
        "service_attempt_latency_ns{result=\"alloc_budget\"}",
        "service_attempt_latency_ns{result=\"deadline\"}",
        "service_attempt_latency_ns{result=\"ok\"}",
        "service_attempt_latency_ns{result=\"panic\"}",
        "service_fuel_used",
        "service_job_latency_ns{rung=\"checked\"}",
        "service_job_latency_ns{rung=\"naive_fallback\"}",
        "service_job_latency_ns{rung=\"reject\"}",
        "service_queue_depth",
        "service_queue_latency_ns",
        "service_queue_wait_ns",
        "service_report_io_errors",
        "service_stage_latency_ns{stage=\"compile\"}",
        "service_stage_latency_ns{stage=\"verify\"}",
        "service_workers_busy",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(
        got, want,
        "the instrument set changed — update DESIGN.md §16, the CI smoke \
         greps, and this golden list together"
    );
}

/// The stats document is schema-tagged, machine-readable, embeds the
/// job counters verbatim, and its histograms reconcile with them.
#[test]
fn stats_frame_reconciles_with_final_counters() {
    let (reports, counters, metrics) = run_instrumented(chaos_config(), jobs(120));
    assert_eq!(reports.len(), 120);
    let json = metrics.stats_json(&counters);
    tossa::trace::validate_json(&json).expect("stats frame is well-formed JSON");
    let doc = parse_json(&json).expect("stats frame parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("tossa-service-stats/1")
    );
    assert!(doc.get("uptime_ns").and_then(Json::as_u64).is_some());

    // The jobs object is the counter set verbatim: every name, every
    // total, nothing else.
    let jobs_obj = doc
        .get("jobs")
        .and_then(Json::as_obj)
        .expect("stats carries a jobs object");
    assert_eq!(jobs_obj.len(), JobCounter::COUNT);
    for c in JobCounter::ALL {
        assert_eq!(
            doc.get("jobs")
                .and_then(|j| j.get(c.name()))
                .and_then(Json::as_u64),
            Some(counters.get(c)),
            "jobs.{} diverged from the final counter set",
            c.name()
        );
    }

    // Reconciliation identities: each latency series counts exactly the
    // population its label names.
    let submitted = counters.get(JobCounter::JobsSubmitted);
    let shed = counters.get(JobCounter::JobsShed);
    assert_eq!(
        hist_count(&doc, "service_queue_wait_ns"),
        submitted + shed,
        "every admission attempt waits on the queue exactly once"
    );
    assert_eq!(
        hist_count(&doc, "service_queue_latency_ns"),
        submitted,
        "every accepted job is dequeued exactly once"
    );
    assert_eq!(
        hist_count(&doc, "service_attempt_latency_ns{result=\"panic\"}"),
        counters.get(JobCounter::PanicsContained),
        "panic-attempt latencies must count the contained panics"
    );
    assert_eq!(
        hist_count(&doc, "service_attempt_latency_ns{result=\"deadline\"}"),
        counters.get(JobCounter::DeadlinesBlown)
    );
    assert_eq!(
        hist_count(&doc, "service_attempt_latency_ns{result=\"alloc_budget\"}"),
        counters.get(JobCounter::AllocBudgetExceeded)
    );
    let worker_reports = counters.get(JobCounter::JobsCompletedChecked)
        + counters.get(JobCounter::JobsCompletedFallback)
        + counters.get(JobCounter::JobsRejected)
        + counters.get(JobCounter::JobsQuarantined);
    let job_latency_total: u64 = [
        "service_job_latency_ns{rung=\"checked\"}",
        "service_job_latency_ns{rung=\"naive_fallback\"}",
        "service_job_latency_ns{rung=\"reject\"}",
    ]
    .iter()
    .map(|n| hist_count(&doc, n))
    .sum();
    assert_eq!(
        job_latency_total, worker_reports,
        "every worker-delivered report lands in exactly one rung series"
    );
    // Chaos actually drove the envelope, so the identities above are
    // non-vacuous.
    assert!(counters.get(JobCounter::PanicsContained) > 0);

    // Flight summary: ring capacity and a recorded-count floor (at
    // least submit + dequeue + attempt + outcome per worker report).
    let flight = doc.get("flight").expect("stats carries a flight object");
    assert_eq!(
        flight.get("capacity").and_then(Json::as_u64),
        Some(metrics.flight.capacity() as u64)
    );
    let recorded = flight
        .get("recorded")
        .and_then(Json::as_u64)
        .expect("flight.recorded");
    assert!(recorded >= 4 * worker_reports, "flight trail too sparse");

    // Gauges settle: no worker is busy and the queue is empty after
    // shutdown.
    let gauge = |name: &str| {
        doc.get("metrics")
            .and_then(|m| m.get("gauges"))
            .and_then(|g| g.get(name))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("stats lacks gauge {name:?}"))
    };
    assert_eq!(gauge("service_workers_busy"), 0.0);
    assert_eq!(gauge("service_queue_depth"), 0.0);
}

#[test]
fn prometheus_exposition_covers_jobs_and_instruments() {
    let (_, counters, metrics) = run_instrumented(ServiceConfig::default(), jobs(10));
    let text = metrics.prometheus(&counters);
    assert!(text.contains("# TYPE tossa_jobs_submitted counter"));
    assert!(text.contains(&format!(
        "tossa_jobs_submitted {}",
        counters.get(JobCounter::JobsSubmitted)
    )));
    assert!(text.contains("# TYPE tossa_service_queue_depth gauge"));
    assert!(text.contains("# TYPE tossa_service_queue_latency_ns histogram"));
    assert!(text.contains("tossa_service_queue_latency_ns_bucket{le=\"+Inf\"} 10"));
    assert!(text.contains("tossa_service_queue_latency_ns_count 10"));
    assert!(text.contains("tossa_service_job_latency_ns_bucket{rung=\"checked\",le="));
    // The cumulative bucket series is monotone for every histogram.
    for family in ["tossa_service_queue_latency_ns", "tossa_service_fuel_used"] {
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with(&format!("{family}_bucket")))
        {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad exposition line {line:?}"));
            assert!(v >= last, "non-cumulative bucket series: {line}");
            last = v;
        }
        assert!(last > 0, "{family} recorded nothing");
    }
}

/// A clean job leaves the canonical trail: submit → dequeue → attempt
/// → outcome, in order, with the documented details.
#[test]
fn flight_recorder_captures_the_job_lifecycle_in_order() {
    let (reports, _, metrics) = run_instrumented(ServiceConfig::default(), jobs(4));
    assert_eq!(reports.len(), 4);
    for id in 1..=4u64 {
        let trail = metrics.flight.for_job(id);
        let stages: Vec<&str> = trail.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            ["submit", "dequeue", "attempt", "outcome"],
            "job {id}: unexpected lifecycle trail"
        );
        for e in &trail {
            assert!(FLIGHT_STAGES.contains(&e.stage));
            assert_eq!(e.job, id);
        }
        assert_eq!(
            trail[2].detail, "clean",
            "attempt detail records chaos class"
        );
        assert_eq!(trail[3].detail, "completed/checked");
        assert!(
            trail.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "job {id}: trail timestamps not monotone"
        );
    }
    // The dump is schema-tagged, machine-readable JSON.
    let dump = metrics.flight.to_json();
    tossa::trace::validate_json(&dump).expect("flight dump is well-formed JSON");
    assert!(dump.contains("\"schema\": \"tossa-flight-recorder/1\""));
    let doc = parse_json(&dump).expect("flight dump parses");
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .expect("dump carries events");
    assert_eq!(events.len() as u64, metrics.flight.recorded());
    assert_eq!(metrics.flight.dropped(), 0);
}

/// The ring stays bounded: overflow evicts the oldest events and
/// counts them as dropped instead of growing without bound.
#[test]
fn flight_ring_evicts_oldest_on_overflow() {
    let r = tossa::server::FlightRecorder::new(8);
    for k in 0..20u64 {
        r.record(k, 0, "submit", "f");
    }
    let snap = r.snapshot();
    assert_eq!(snap.len(), 8, "ring exceeded its capacity");
    let ids: Vec<u64> = snap.iter().map(|e| e.job).collect();
    assert_eq!(ids, (12..20).collect::<Vec<u64>>(), "not the newest events");
    assert_eq!(r.recorded(), 20);
    assert_eq!(r.dropped(), 12);
}
