//! Pins the checked-in `BENCH_pr4.json` end-to-end allocation claim:
//! on the paper's focus suites (kernels + vocoder), the pinning
//! pipeline's post-allocation spill+move total is no worse than either
//! naive baseline's. The snapshot is regenerated with
//! `cargo run --release -p tossa-bench --bin perf`.

use std::collections::HashMap;

fn snapshot() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pr4.json");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Line-wise extraction of `(suite, experiment) -> spill_move_total`
/// from the stable trajectory shape (one experiment entry per line
/// group; the `"alloc"` object is emitted on one line).
fn alloc_totals(json: &str) -> HashMap<(String, String), u64> {
    let grab = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        Some(
            rest.trim_start_matches([':', ' ', '"'])
                .chars()
                .take_while(|c| c.is_alphanumeric() || "_- ".contains(*c))
                .collect::<String>()
                .trim()
                .to_string(),
        )
    };
    let mut out = HashMap::new();
    let (mut suite, mut exp) = (String::new(), String::new());
    for line in json.lines() {
        if let Some(s) = grab(line, "\"suite\"") {
            suite = s;
        }
        if let Some(e) = grab(line, "\"experiment\"") {
            exp = e;
        }
        if let Some(t) = grab(line, "\"spill_move_total\"") {
            let total: u64 = t.parse().unwrap_or_else(|_| panic!("bad total `{t}`"));
            out.insert((suite.clone(), exp.clone()), total);
        }
    }
    out
}

#[test]
fn snapshot_is_well_formed_v3() {
    let json = snapshot();
    tossa::trace::validate_json(&json).expect("BENCH_pr4.json is well-formed JSON");
    assert!(
        json.contains("\"schema\": \"tossa-bench-trajectory/3\""),
        "snapshot must use the v3 schema (with alloc objects)"
    );
    assert!(json.contains("\"alloc_ns\""));
}

#[test]
fn pipeline_allocates_no_worse_than_naive_on_focus_suites() {
    let totals = alloc_totals(&snapshot());
    for suite in ["VALcc1", "VALcc2", "LAI Large"] {
        let get = |exp: &str| {
            *totals
                .get(&(suite.to_string(), exp.to_string()))
                .unwrap_or_else(|| panic!("{suite}/{exp} missing from BENCH_pr4.json"))
        };
        let pipeline = get("LphiAbiC");
        // The Table-4 naive baselines: Briggs-style φ replacement and
        // naive ABI handling, no coalescing.
        for naive in ["Sphi", "Labi"] {
            assert!(
                pipeline <= get(naive),
                "{suite}: pipeline post-alloc total {pipeline} worse than naive \
                 {naive} {}",
                get(naive)
            );
        }
        // And the full-pipeline Sreedhar baseline stays within one move.
        assert!(
            pipeline <= get("SphiLabiC") + 1,
            "{suite}: pipeline {pipeline} vs Sreedhar {}",
            get("SphiLabiC")
        );
    }
}
