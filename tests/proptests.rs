//! Property-style tests over randomly generated structured programs and
//! random parallel copies. Seeds are drawn from a deterministic local
//! generator (the repo builds offline, so there is no proptest crate);
//! every failure message names the seed for direct replay.

use tossa::analysis::domtree::{naive_dominators, DomTree};
use tossa::bench::runner::{run_experiment, verify};
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::interfere::InterferenceMode;
use tossa::core::Experiment;
use tossa::ir::cfg::Cfg;
use tossa::ir::parallel_copy::{eval_sequential, sequentialize};
use tossa::ir::rng::SplitMix64;
use tossa::ir::Var;
use tossa::ssa::{to_ssa, verify_ssa};

const CASES: usize = 24;

/// Deterministic seed sample, mirroring the old proptest configuration
/// (24 cases over `0..10_000`).
fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x70_55A ^ stream);
    (0..CASES).map(|_| rng.random_range(0u64..10_000)).collect()
}

/// SSA construction preserves semantics and produces valid SSA on
/// arbitrary generated programs.
#[test]
fn ssa_construction_sound() {
    for seed in seeds(1) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let mut ssa = bf.func.clone();
        to_ssa(&mut ssa);
        ssa.validate().unwrap();
        verify_ssa(&ssa).unwrap();
        verify(&bf.func, &ssa, &bf.inputs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The full pinning pipeline (our algorithm, with ABI constraints and
/// Chaitin cleanup) is an observable no-op on arbitrary programs.
#[test]
fn pinning_pipeline_sound() {
    for seed in seeds(2) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let r = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default());
        r.func.validate().unwrap();
        verify(&bf.func, &r.func, &bf.inputs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", r.func));
    }
}

/// The optimistic and pessimistic interference variants stay sound.
#[test]
fn interference_variants_sound() {
    for seed in seeds(3) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        for mode in [InterferenceMode::Optimistic, InterferenceMode::Pessimistic] {
            let opts = CoalesceOptions {
                mode,
                ..Default::default()
            };
            let r = run_experiment(&bf.func, Experiment::LphiAbi, &opts);
            verify(&bf.func, &r.func, &bf.inputs)
                .unwrap_or_else(|e| panic!("seed {seed} {mode:?}: {e}\n{}", r.func));
        }
    }
}

/// The Sreedhar baseline is an observable no-op on arbitrary programs.
#[test]
fn sreedhar_pipeline_sound() {
    for seed in seeds(4) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let r = run_experiment(&bf.func, Experiment::SphiLabiC, &CoalesceOptions::default());
        verify(&bf.func, &r.func, &bf.inputs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", r.func));
    }
}

/// Cooper–Harvey–Kennedy dominators agree with the naive O(n²) dataflow
/// on random CFGs.
#[test]
fn dominators_match_naive() {
    for seed in seeds(5) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let f = &bf.func;
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let naive = naive_dominators(f, &cfg);
        for a in f.blocks() {
            for b in f.blocks() {
                assert_eq!(
                    dt.dominates(a, b),
                    naive[b].contains(a),
                    "seed {seed}: dominates({a}, {b})"
                );
            }
        }
    }
}

/// Sequentializing a random parallel copy preserves its semantics.
#[test]
fn parallel_copy_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let npairs = rng.random_range(0usize..10);
        let pairs: Vec<(usize, usize)> = (0..npairs)
            .map(|_| (rng.random_range(0usize..12), rng.random_range(0usize..12)))
            .collect();
        // Make destinations unique, keeping the first occurrence.
        let mut seen = std::collections::HashSet::new();
        let moves: Vec<(Var, Var)> = pairs
            .into_iter()
            .filter(|&(d, _)| seen.insert(d))
            .map(|(d, s)| (Var::new(d), Var::new(s)))
            .collect();
        let mut next = 100;
        let seq = sequentialize(&moves, || {
            next += 1;
            Var::new(next)
        });
        let env = eval_sequential(&seq, |v| v.index() as i64);
        for &(d, s) in &moves {
            let got = env.get(&d).copied().unwrap_or(d.index() as i64);
            assert_eq!(got, s.index() as i64, "case {case}: dst {d} src {s}");
        }
        // No more temps than cycles can exist (at most |moves| / 2).
        assert!(next - 100 <= (moves.len() / 2).max(1), "case {case}");
    }
}

/// Deterministic regression corner: a seed sweep for the coalescer
/// post-condition — no component of the pruned affinity graph may
/// contain an interfering pair, observable as zero repair copies when no
/// constraint pass ran.
#[test]
fn coalescer_creates_no_repairs_without_abi() {
    for seed in 0..40u64 {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let r = run_experiment(&bf.func, Experiment::LphiC, &CoalesceOptions::default());
        assert_eq!(
            r.recon.repair_copies, 0,
            "seed {seed}: φ pinning must not create repairs\n{}",
            r.func
        );
    }
}

/// Trace counters are internally consistent on arbitrary programs:
/// inserted-vs-coalesced copy accounting never goes negative, every
/// coalescing decision is backed by an affinity edge, the oracle's memo
/// arithmetic holds, and the reconstruction stats agree with the trace.
#[test]
fn trace_counter_invariants() {
    use tossa::trace::{capture, Counter};
    for seed in seeds(8) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let opts = CoalesceOptions::default();
        let (r, data) = capture(|| run_experiment(&bf.func, Experiment::LphiAbiC, &opts));
        let c = &data.counters;
        // The cleanup cannot delete more copies than the pipeline put in.
        assert!(
            c.copies_inserted() >= c.get(Counter::CopiesCoalesced),
            "seed {seed}: inserted {} < coalesced {}",
            c.copies_inserted(),
            c.get(Counter::CopiesCoalesced)
        );
        // Every coalesce event traces back to a pin or an affinity edge.
        if c.get(Counter::CongruenceClasses) > 0 {
            assert!(c.get(Counter::AffinityEdges) > 0, "seed {seed}");
        }
        assert!(
            c.get(Counter::CongruenceClasses) <= c.get(Counter::AffinityEdges),
            "seed {seed}: each congruence class needs at least one affinity edge"
        );
        assert!(
            c.get(Counter::CoalesceMerges) <= c.get(Counter::PinsPhi),
            "seed {seed}: merges pin the variables they merge"
        );
        assert!(
            c.get(Counter::AffinityPrunedInitial) + c.get(Counter::AffinityPrunedBipartite)
                <= c.get(Counter::AffinityEdges),
            "seed {seed}: cannot prune more edges than were built"
        );
        assert!(
            c.get(Counter::OracleCacheHits) <= c.get(Counter::OracleQueries),
            "seed {seed}"
        );
        assert!(
            c.get(Counter::ParallelCopyCycles) <= c.get(Counter::ParallelCopyGroups),
            "seed {seed}"
        );
        // The runner's own stats and the trace must tell one story.
        assert_eq!(
            c.get(Counter::CopiesPhi),
            r.recon.phi_copies as u64,
            "seed {seed}"
        );
        assert_eq!(
            c.get(Counter::CopiesRepair),
            r.recon.repair_copies as u64,
            "seed {seed}"
        );
        assert_eq!(
            c.get(Counter::CopiesTemp),
            r.recon.temp_copies as u64,
            "seed {seed}"
        );
        assert_eq!(
            c.get(Counter::PhisRemoved),
            r.recon.phis_removed as u64,
            "seed {seed}"
        );
        assert_eq!(
            c.get(Counter::EdgesSplit),
            r.recon.edges_split as u64,
            "seed {seed}"
        );
        assert_eq!(
            c.get(Counter::CopiesCoalesced),
            r.coalesced as u64,
            "seed {seed}"
        );
    }
}

/// The span tree of a traced run is well nested, and two runs of the
/// same pipeline on the same input record identical counters.
#[test]
fn trace_spans_nest_and_counters_replay() {
    use tossa::trace::capture;
    for seed in seeds(9) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let opts = CoalesceOptions::default();
        let (_, first) = capture(|| run_experiment(&bf.func, Experiment::LphiAbiC, &opts));
        first
            .check_well_nested()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            !first.spans.is_empty(),
            "seed {seed}: pipeline recorded no spans"
        );
        let (_, second) = capture(|| run_experiment(&bf.func, Experiment::LphiAbiC, &opts));
        assert_eq!(
            first.counters, second.counters,
            "seed {seed}: counters must be deterministic across identical runs"
        );
        // The span *structure* replays too: same names in the same order.
        let names = |d: &tossa::trace::TraceData| {
            d.spans
                .iter()
                .map(|s| (s.name, s.depth))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&first), names(&second), "seed {seed}");
    }
}
