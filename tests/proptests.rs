//! Property-style tests over randomly generated structured programs and
//! random parallel copies. Seeds are drawn from a deterministic local
//! generator (the repo builds offline, so there is no proptest crate);
//! every failure message names the seed for direct replay.

use tossa::analysis::domtree::{naive_dominators, DomTree};
use tossa::bench::runner::{run_experiment, verify};
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::interfere::InterferenceMode;
use tossa::core::Experiment;
use tossa::ir::cfg::Cfg;
use tossa::ir::parallel_copy::{eval_sequential, sequentialize};
use tossa::ir::rng::SplitMix64;
use tossa::ir::Var;
use tossa::ssa::{to_ssa, verify_ssa};

const CASES: usize = 24;

/// Deterministic seed sample, mirroring the old proptest configuration
/// (24 cases over `0..10_000`).
fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x70_55A ^ stream);
    (0..CASES).map(|_| rng.random_range(0u64..10_000)).collect()
}

/// SSA construction preserves semantics and produces valid SSA on
/// arbitrary generated programs.
#[test]
fn ssa_construction_sound() {
    for seed in seeds(1) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let mut ssa = bf.func.clone();
        to_ssa(&mut ssa);
        ssa.validate().unwrap();
        verify_ssa(&ssa).unwrap();
        verify(&bf.func, &ssa, &bf.inputs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The full pinning pipeline (our algorithm, with ABI constraints and
/// Chaitin cleanup) is an observable no-op on arbitrary programs.
#[test]
fn pinning_pipeline_sound() {
    for seed in seeds(2) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let r = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default());
        r.func.validate().unwrap();
        verify(&bf.func, &r.func, &bf.inputs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", r.func));
    }
}

/// The optimistic and pessimistic interference variants stay sound.
#[test]
fn interference_variants_sound() {
    for seed in seeds(3) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        for mode in [InterferenceMode::Optimistic, InterferenceMode::Pessimistic] {
            let opts = CoalesceOptions {
                mode,
                ..Default::default()
            };
            let r = run_experiment(&bf.func, Experiment::LphiAbi, &opts);
            verify(&bf.func, &r.func, &bf.inputs)
                .unwrap_or_else(|e| panic!("seed {seed} {mode:?}: {e}\n{}", r.func));
        }
    }
}

/// The Sreedhar baseline is an observable no-op on arbitrary programs.
#[test]
fn sreedhar_pipeline_sound() {
    for seed in seeds(4) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let r = run_experiment(&bf.func, Experiment::SphiLabiC, &CoalesceOptions::default());
        verify(&bf.func, &r.func, &bf.inputs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", r.func));
    }
}

/// Cooper–Harvey–Kennedy dominators agree with the naive O(n²) dataflow
/// on random CFGs.
#[test]
fn dominators_match_naive() {
    for seed in seeds(5) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let f = &bf.func;
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let naive = naive_dominators(f, &cfg);
        for a in f.blocks() {
            for b in f.blocks() {
                assert_eq!(
                    dt.dominates(a, b),
                    naive[b].contains(a),
                    "seed {seed}: dominates({a}, {b})"
                );
            }
        }
    }
}

/// Sequentializing a random parallel copy preserves its semantics.
#[test]
fn parallel_copy_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let npairs = rng.random_range(0usize..10);
        let pairs: Vec<(usize, usize)> = (0..npairs)
            .map(|_| (rng.random_range(0usize..12), rng.random_range(0usize..12)))
            .collect();
        // Make destinations unique, keeping the first occurrence.
        let mut seen = std::collections::HashSet::new();
        let moves: Vec<(Var, Var)> = pairs
            .into_iter()
            .filter(|&(d, _)| seen.insert(d))
            .map(|(d, s)| (Var::new(d), Var::new(s)))
            .collect();
        let mut next = 100;
        let seq = sequentialize(&moves, || {
            next += 1;
            Var::new(next)
        });
        let env = eval_sequential(&seq, |v| v.index() as i64);
        for &(d, s) in &moves {
            let got = env.get(&d).copied().unwrap_or(d.index() as i64);
            assert_eq!(got, s.index() as i64, "case {case}: dst {d} src {s}");
        }
        // No more temps than cycles can exist (at most |moves| / 2).
        assert!(next - 100 <= (moves.len() / 2).max(1), "case {case}");
    }
}

/// Deterministic regression corner: a seed sweep for the coalescer
/// post-condition — no component of the pruned affinity graph may
/// contain an interfering pair, observable as zero repair copies when no
/// constraint pass ran.
#[test]
fn coalescer_creates_no_repairs_without_abi() {
    for seed in 0..40u64 {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let r = run_experiment(&bf.func, Experiment::LphiC, &CoalesceOptions::default());
        assert_eq!(
            r.recon.repair_copies, 0,
            "seed {seed}: φ pinning must not create repairs\n{}",
            r.func
        );
    }
}
