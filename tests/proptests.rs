//! Property-based tests over randomly generated structured programs and
//! random parallel copies.

use proptest::prelude::*;
use tossa::analysis::domtree::{naive_dominators, DomTree};
use tossa::bench::runner::{run_experiment, verify};
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::interfere::InterferenceMode;
use tossa::core::Experiment;
use tossa::ir::cfg::Cfg;
use tossa::ir::parallel_copy::{eval_sequential, sequentialize};
use tossa::ir::Var;
use tossa::ssa::{to_ssa, verify_ssa};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// SSA construction preserves semantics and produces valid SSA on
    /// arbitrary generated programs.
    #[test]
    fn ssa_construction_sound(seed in 0u64..10_000) {
        let bf = generate_function(seed, &SynthConfig { functions: 1, ..Default::default() });
        let mut ssa = bf.func.clone();
        to_ssa(&mut ssa);
        ssa.validate().unwrap();
        verify_ssa(&ssa).unwrap();
        verify(&bf.func, &ssa, &bf.inputs).unwrap();
    }

    /// The full pinning pipeline (our algorithm, with ABI constraints and
    /// Chaitin cleanup) is an observable no-op on arbitrary programs.
    #[test]
    fn pinning_pipeline_sound(seed in 0u64..10_000) {
        let bf = generate_function(seed, &SynthConfig { functions: 1, ..Default::default() });
        let r = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default());
        r.func.validate().unwrap();
        verify(&bf.func, &r.func, &bf.inputs).unwrap_or_else(|e| panic!("{e}\n{}", r.func));
    }

    /// The optimistic and pessimistic interference variants stay sound.
    #[test]
    fn interference_variants_sound(seed in 0u64..5_000) {
        let bf = generate_function(seed, &SynthConfig { functions: 1, ..Default::default() });
        for mode in [InterferenceMode::Optimistic, InterferenceMode::Pessimistic] {
            let opts = CoalesceOptions { mode, ..Default::default() };
            let r = run_experiment(&bf.func, Experiment::LphiAbi, &opts);
            verify(&bf.func, &r.func, &bf.inputs)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}\n{}", r.func));
        }
    }

    /// The Sreedhar baseline is an observable no-op on arbitrary programs.
    #[test]
    fn sreedhar_pipeline_sound(seed in 0u64..10_000) {
        let bf = generate_function(seed, &SynthConfig { functions: 1, ..Default::default() });
        let r = run_experiment(&bf.func, Experiment::SphiLabiC, &CoalesceOptions::default());
        verify(&bf.func, &r.func, &bf.inputs).unwrap_or_else(|e| panic!("{e}\n{}", r.func));
    }

    /// Cooper–Harvey–Kennedy dominators agree with the naive O(n²)
    /// dataflow on random CFGs.
    #[test]
    fn dominators_match_naive(seed in 0u64..10_000) {
        let bf = generate_function(seed, &SynthConfig { functions: 1, ..Default::default() });
        let f = &bf.func;
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let naive = naive_dominators(f, &cfg);
        for a in f.blocks() {
            for b in f.blocks() {
                prop_assert_eq!(
                    dt.dominates(a, b),
                    naive[b].contains(a),
                    "dominates({}, {})", a, b
                );
            }
        }
    }

    /// Sequentializing a random parallel copy preserves its semantics.
    #[test]
    fn parallel_copy_semantics(
        pairs in proptest::collection::vec((0usize..12, 0usize..12), 0..10)
    ) {
        // Make destinations unique, keeping the first occurrence.
        let mut seen = std::collections::HashSet::new();
        let moves: Vec<(Var, Var)> = pairs
            .into_iter()
            .filter(|&(d, _)| seen.insert(d))
            .map(|(d, s)| (Var::new(d), Var::new(s)))
            .collect();
        let mut next = 100;
        let seq = sequentialize(&moves, || {
            next += 1;
            Var::new(next)
        });
        let env = eval_sequential(&seq, |v| v.index() as i64);
        for &(d, s) in &moves {
            let got = env.get(&d).copied().unwrap_or(d.index() as i64);
            prop_assert_eq!(got, s.index() as i64, "dst {} src {}", d, s);
        }
        // No more temps than cycles can exist (at most |moves| / 2).
        prop_assert!(next - 100 <= (moves.len() / 2).max(1));
    }
}

/// Deterministic regression corner: a seed sweep for the coalescer
/// post-condition — no component of the pruned affinity graph may
/// contain an interfering pair, observable as zero repair copies when no
/// constraint pass ran.
#[test]
fn coalescer_creates_no_repairs_without_abi() {
    for seed in 0..40u64 {
        let bf = generate_function(seed, &SynthConfig { functions: 1, ..Default::default() });
        let r = run_experiment(&bf.func, Experiment::LphiC, &CoalesceOptions::default());
        assert_eq!(
            r.recon.repair_copies, 0,
            "seed {seed}: φ pinning must not create repairs\n{}",
            r.func
        );
    }
}
