//! Whole-population round-trip tests: print → parse → behaviour must be
//! unchanged at every pipeline stage, and the toolchain must be
//! deterministic.

use tossa::bench::runner::{front_end, run_experiment};
use tossa::bench::suites::all_suites;
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::ir::{interp, machine::Machine, parse::parse_function};

#[test]
fn source_print_parse_preserves_behaviour() {
    let machine = Machine::dsp32();
    for suite in all_suites(8) {
        for bf in &suite.functions {
            let printed = bf.func.to_string();
            let reparsed = parse_function(&printed, &machine)
                .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", bf.func.name));
            reparsed.validate().unwrap();
            for inputs in &bf.inputs {
                assert_eq!(
                    interp::run(&bf.func, inputs, 5_000_000).unwrap().outputs,
                    interp::run(&reparsed, inputs, 5_000_000).unwrap().outputs,
                    "{} on {inputs:?}",
                    bf.func.name
                );
            }
        }
    }
}

#[test]
fn ssa_print_parse_preserves_behaviour_and_pins() {
    let machine = Machine::dsp32();
    for suite in all_suites(5) {
        for bf in &suite.functions {
            let mut ssa = front_end(&bf.func);
            tossa::core::collect::pinning_sp(&mut ssa);
            tossa::core::collect::pinning_abi(&mut ssa);
            let printed = ssa.to_string();
            let reparsed = parse_function(&printed, &machine)
                .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", bf.func.name));
            // Pins survive the round trip. Variable pinnings print at the
            // definition, so only defined variables can round-trip (the
            // incoming SP value has a pin but no definition).
            let pins = |f: &tossa::ir::Function| {
                let defined: std::collections::HashSet<_> = f
                    .all_insts()
                    .flat_map(|(_, i)| f.inst(i).defs.to_vec())
                    .map(|d| d.var)
                    .collect();
                f.vars()
                    .filter(|v| defined.contains(v) && f.var(*v).pin.is_some())
                    .count()
            };
            assert_eq!(pins(&ssa), pins(&reparsed), "{printed}");
            for inputs in &bf.inputs {
                assert_eq!(
                    interp::run(&ssa, inputs, 5_000_000).unwrap().outputs,
                    interp::run(&reparsed, inputs, 5_000_000).unwrap().outputs,
                    "{} on {inputs:?}",
                    bf.func.name
                );
            }
        }
    }
}

#[test]
fn final_code_print_parse_preserves_behaviour() {
    let machine = Machine::dsp32();
    for suite in all_suites(5) {
        for bf in &suite.functions {
            let r = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default());
            let printed = r.func.to_string();
            let reparsed = parse_function(&printed, &machine)
                .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", bf.func.name));
            for inputs in &bf.inputs {
                assert_eq!(
                    interp::run(&r.func, inputs, 5_000_000).unwrap().outputs,
                    interp::run(&reparsed, inputs, 5_000_000).unwrap().outputs,
                    "{} on {inputs:?}",
                    bf.func.name
                );
            }
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    for suite in all_suites(5) {
        for bf in &suite.functions {
            let a = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default());
            let b = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default());
            assert_eq!(a.func.to_string(), b.func.to_string(), "{}", bf.func.name);
            assert_eq!(a.moves, b.moves);
            assert_eq!(a.recon, b.recon);
        }
    }
}
