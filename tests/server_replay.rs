//! Deterministic replay of service failures (PR7 satellite).
//!
//! Every failure report carries the chaos *site* seed, the drawn fault
//! class, the experiment key, and the input seeds — enough to rebuild
//! the exact failing `run_checked` call offline with no access to the
//! service or its config. The round-trip proven here:
//!
//! 1. the service runs under chaos and emits a failure report;
//! 2. the report alone reconstructs a failing predicate (same function,
//!    same corruption, same site seed → same structured error *class*);
//! 3. `tossa_bench::reduce` shrinks the function under that predicate,
//!    and the reduced case still fails with the same class.
//!
//! Classes (not `Display` strings) are the replay contract: shrinking
//! may move the failure site, but it must stay the same kind of bug.

use std::time::Duration;
use tossa::bench::checked::{fuzz_suite, run_checked, CheckedOptions};
use tossa::bench::reduce::reduce;
use tossa::bench::suites::BenchFunction;
use tossa::core::chaos::{AllocCorruption, Corruption};
use tossa::core::coalesce::CoalesceOptions;
use tossa::ir::Function;
use tossa::server::proto::{default_inputs, experiment_from_key};
use tossa::server::report::JobReport;
use tossa::server::service::{run_batch, Job, ServiceConfig};
use tossa::server::{Budget, ChaosConfig, JobRequest};

const SEED: u64 = 0x5EED_0007;
const N: usize = 48;

/// Runs a chaos batch and returns (reports, the suite that fed it).
fn chaos_batch() -> Vec<JobReport> {
    let jobs: Vec<Job> = fuzz_suite(N, SEED)
        .functions
        .into_iter()
        .enumerate()
        .map(|(k, bf)| {
            let id = k as u64 + 1;
            let inputs = default_inputs(&bf.func, id);
            Job {
                req: JobRequest {
                    id,
                    func: bf.func,
                    experiment: None,
                    inputs,
                    inputs_seed: Some(id),
                },
                generator_seed: Some(SEED.wrapping_add(k as u64)),
            }
        })
        .collect();
    let config = ServiceConfig {
        queue_cap: N,
        chaos: Some(ChaosConfig {
            seed: 0xBAD_CA11,
            rate_pct: 100,
        }),
        // Injected deadline blowouts sleep just past the deadline; keep
        // it short so the harvest is fast (spurious blowouts only cost
        // retries, and this test ignores quarantines anyway).
        budget: Budget {
            deadline: Duration::from_millis(400),
            ..Budget::default()
        },
        ..ServiceConfig::default()
    };
    run_batch(config, jobs).0
}

/// Rebuilds the corruption class named by a report's `chaos_class`.
fn corruption_from_class(class: &str) -> (Option<Corruption>, Option<AllocCorruption>) {
    if let Some(name) = class.strip_prefix("pipeline.") {
        let c = Corruption::all()
            .iter()
            .copied()
            .find(|c| format!("{c:?}") == name);
        (c, None)
    } else if let Some(name) = class.strip_prefix("alloc.") {
        let c = AllocCorruption::all()
            .iter()
            .copied()
            .find(|c| format!("{c:?}") == name);
        (None, c)
    } else {
        (None, None)
    }
}

/// The replayed failure predicate a report defines: "the checked
/// pipeline, corrupted exactly as recorded, reports this error class on
/// this function".
fn replay_fails_with_class(func: &Function, inputs: &[Vec<i64>], report: &JobReport) -> bool {
    let Some(want) = report.error_class.as_deref() else {
        return false;
    };
    let Some(chaos_class) = report.chaos_class.as_deref() else {
        return false;
    };
    let (chaos, alloc_chaos) = corruption_from_class(chaos_class);
    let copts = CheckedOptions {
        chaos,
        alloc_chaos,
        chaos_seed: report.chaos_seed.unwrap_or(0),
        alloc: true,
        ..CheckedOptions::default()
    };
    let exp = match experiment_from_key(&report.experiment) {
        Some(e) => e,
        None => return false,
    };
    let bf = BenchFunction {
        func: func.clone(),
        inputs: inputs.to_vec(),
    };
    let outcome = run_checked(&bf, exp, &CoalesceOptions::default(), &copts);
    outcome.error.as_ref().map(|e| e.class_key()) == Some(want)
}

#[test]
fn failure_reports_replay_and_shrink_to_the_same_class() {
    let reports = chaos_batch();
    let suite = fuzz_suite(N, SEED);

    // Harvest reports whose final attempt drew a pipeline/alloc
    // corruption that landed and was caught as a structured error.
    let candidates: Vec<&JobReport> = reports
        .iter()
        .filter(|r| {
            r.error_class.is_some()
                && r.chaos_class
                    .as_deref()
                    .is_some_and(|c| c.starts_with("pipeline.") || c.starts_with("alloc."))
        })
        .collect();
    assert!(
        !candidates.is_empty(),
        "full-rate chaos over {N} jobs landed no pipeline corruption — \
         the harvest is broken"
    );

    let mut round_tripped = 0;
    for report in candidates {
        let src = &suite.functions[(report.id - 1) as usize].func;
        let inputs = default_inputs(src, report.inputs_seed.unwrap_or(report.id));

        // (1) The report alone reproduces the failure class.
        if !replay_fails_with_class(src, &inputs, report) {
            // The service's draw corrupted a *different attempt* than
            // the one that produced the decisive error (e.g. the final
            // attempt's fault was transient). Such reports aren't
            // pipeline replays; skip them.
            continue;
        }

        // (2) Shrink under the replayed predicate.
        let failing = |f: &Function| replay_fails_with_class(f, &inputs, report);
        let (reduced, stats) = reduce(src, &failing);

        // (3) The reduced case still fails with the same class.
        assert!(
            replay_fails_with_class(&reduced, &inputs, report),
            "job {}: reduction lost the failure class {:?}",
            report.id,
            report.error_class
        );
        assert!(
            stats.final_size <= stats.initial_size,
            "job {}: reducer grew the case: {stats:?}",
            report.id
        );
        round_tripped += 1;
        if round_tripped >= 3 {
            break; // three full round-trips is plenty for tier-1
        }
    }
    assert!(
        round_tripped > 0,
        "no harvested report replayed — seeds are not round-tripping"
    );
}

#[test]
fn replay_is_deterministic_across_runs() {
    // The same report-shaped parameters must reproduce the same outcome
    // twice — the property the JSONL artifact relies on.
    let suite = fuzz_suite(8, SEED);
    let bf = &suite.functions[0];
    let copts = CheckedOptions {
        chaos: Some(Corruption::MergeInterferingWebs),
        chaos_seed: tossa::server::site_seed(0xBAD_CA11, 1),
        alloc: true,
        ..CheckedOptions::default()
    };
    let exp = experiment_from_key("LphiAbiC").expect("known key");
    let a = run_checked(bf, exp, &CoalesceOptions::default(), &copts);
    let b = run_checked(bf, exp, &CoalesceOptions::default(), &copts);
    assert_eq!(
        a.error.as_ref().map(|e| e.class_key()),
        b.error.as_ref().map(|e| e.class_key()),
    );
    assert_eq!(a.fell_back, b.fell_back);
    assert_eq!(a.moves, b.moves);
}
