//! Property-style tests for the register allocator over randomly
//! generated structured programs, using the same deterministic seed
//! scheme as `proptests.rs` (no proptest crate offline; every failure
//! message names the seed for direct replay).
//!
//! The invariants checked here are *independent* re-derivations — they
//! recompute liveness and walk the blocks themselves rather than calling
//! into the allocator's own verifier, so a bug shared by the assignment
//! engines and `verify_allocation` still gets caught.

use std::collections::HashMap;
use tossa::analysis::Liveness;
use tossa::bench::runner::{run_experiment, verify};
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::bench::suites::BenchFunction;
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::ir::cfg::Cfg;
use tossa::ir::rng::SplitMix64;
use tossa::ir::{Function, Opcode};
use tossa::regalloc::{allocate, prepare, AllocOptions, Assignment};

const CASES: usize = 24;

/// Deterministic seed sample, mirroring `proptests.rs`.
fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x70_55A ^ stream);
    (0..CASES).map(|_| rng.random_range(0u64..10_000)).collect()
}

/// Runs the paper's full pipeline on a generated program, returning the
/// source (for inputs) and the translated non-SSA function the allocator
/// consumes.
fn pipelined(seed: u64, cfg: &SynthConfig, exp: Experiment) -> (BenchFunction, Function) {
    let bf = generate_function(seed, cfg);
    let r = run_experiment(&bf.func, exp, &CoalesceOptions::default());
    (bf, r.func)
}

/// High register pressure: enough simultaneously-live values that the
/// 20 allocatable DSP32 registers run out and spill code is forced on a
/// healthy fraction of seeds.
fn pressure_config() -> SynthConfig {
    SynthConfig {
        functions: 1,
        pool: 40,
        max_depth: 2,
        body_len: 24,
    }
}

/// Walks every block backwards from `live_exit`, maintaining the live
/// set by hand, and asserts that no two simultaneously-live variables
/// hold the same register.
fn assert_no_live_overlap(f: &Function, asg: &Assignment, seed: u64) {
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    for b in f.blocks() {
        let mut live_now: Vec<_> = live.live_exit(f, b).iter().collect();
        let check = |live_now: &[tossa::ir::Var], at: &str| {
            let mut by_reg: HashMap<u8, tossa::ir::Var> = HashMap::new();
            for &v in live_now {
                let r = asg
                    .get(v)
                    .unwrap_or_else(|| panic!("seed {seed}: {} unassigned", f.var(v).name));
                if let Some(&w) = by_reg.get(&r.0) {
                    panic!(
                        "seed {seed}: {} and {} both live {at} in {}",
                        f.var(v).name,
                        f.var(w).name,
                        f.machine.reg_name(r)
                    );
                }
                by_reg.insert(r.0, v);
            }
        };
        check(&live_now, "at block exit");
        let insts: Vec<_> = f.block_insts(b).collect();
        for &i in insts.iter().rev() {
            let inst = f.inst(i);
            live_now.retain(|v| !inst.defs.iter().any(|o| o.var == *v));
            for o in inst.uses {
                if !live_now.contains(&o.var) {
                    live_now.push(o.var);
                }
            }
            check(&live_now, "before an instruction");
        }
    }
}

/// No two simultaneously-live values ever share a register, re-derived
/// from scratch on the allocator's raw assignment.
#[test]
fn live_values_never_share_a_register() {
    for seed in seeds(10) {
        let (_, mut f) = pipelined(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
            Experiment::LphiAbiC,
        );
        let prep = prepare(&mut f, &AllocOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_no_live_overlap(&f, &prep.assignment, seed);
    }
}

/// The same holds under forced spilling: the rewritten function (with
/// its reload/store temporaries) still has an overlap-free assignment.
#[test]
fn spilled_programs_keep_the_overlap_invariant() {
    let mut spilled_seeds = 0usize;
    for seed in seeds(11) {
        let (_, mut f) = pipelined(seed, &pressure_config(), Experiment::LphiAbiC);
        let prep = prepare(&mut f, &AllocOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        if prep.stats.spilled_vars > 0 {
            spilled_seeds += 1;
        }
        assert_no_live_overlap(&f, &prep.assignment, seed);
    }
    assert!(
        spilled_seeds > 0,
        "the pressure population never spilled — the test lost its teeth"
    );
}

/// Precolored variables (ABI argument/return pins, SP, predicate pins)
/// keep their register verbatim through allocation.
#[test]
fn pins_survive_allocation_verbatim() {
    for seed in seeds(12) {
        let (_, mut f) = pipelined(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
            Experiment::CAbi,
        );
        let pinned: Vec<_> = f
            .vars()
            .filter_map(|v| f.var(v).reg.map(|r| (v, r)))
            .collect();
        let prep = prepare(&mut f, &AllocOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (v, r) in pinned {
            // A pinned variable that appears in the code must hold its
            // register; prepare never rewrites pinned operands.
            let used = f
                .all_insts()
                .any(|(_, i)| f.inst(i).operands().any(|o| o.var == v));
            if used {
                assert_eq!(
                    prep.assignment.get(v),
                    Some(r),
                    "seed {seed}: pin {} moved",
                    f.var(v).name
                );
            }
        }
    }
}

/// Spill slots are well-paired: every loaded slot is also stored, slot
/// numbers are dense from zero, and reload/store counts in the stats
/// match the spill code actually present in the function.
#[test]
fn spill_slots_are_well_paired_and_counted() {
    let mut total_spilled = 0usize;
    for seed in seeds(13) {
        let (_, mut f) = pipelined(seed, &pressure_config(), Experiment::LphiAbiC);
        let prep = prepare(&mut f, &AllocOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut stored = std::collections::HashSet::new();
        let mut loaded = std::collections::HashSet::new();
        let (mut stores, mut reloads) = (0usize, 0usize);
        for (_, i) in f.all_insts() {
            let inst = f.inst(i);
            match inst.opcode {
                Opcode::SpillStore => {
                    stored.insert(inst.imm);
                    stores += 1;
                }
                Opcode::SpillLoad => {
                    loaded.insert(inst.imm);
                    reloads += 1;
                }
                _ => {}
            }
        }
        assert!(
            loaded.is_subset(&stored),
            "seed {seed}: slots {:?} loaded but never stored",
            loaded.difference(&stored).collect::<Vec<_>>()
        );
        let mut slots: Vec<i64> = stored.iter().copied().collect();
        slots.sort_unstable();
        assert_eq!(
            slots,
            (0..slots.len() as i64).collect::<Vec<_>>(),
            "seed {seed}: slot numbering must be dense from 0"
        );
        assert_eq!(slots.len(), prep.stats.spilled_vars, "seed {seed}");
        assert_eq!(stores, prep.stats.stores, "seed {seed}");
        assert_eq!(reloads, prep.stats.reloads, "seed {seed}");
        total_spilled += prep.stats.spilled_vars;
    }
    assert!(
        total_spilled > 0,
        "the pressure population never spilled — the test lost its teeth"
    );
}

/// End to end: full allocation (including the physical rewrite) is an
/// observable no-op on arbitrary programs, spills or not.
#[test]
fn allocated_random_programs_execute_identically() {
    for (stream, cfg) in [
        (
            14,
            SynthConfig {
                functions: 1,
                ..Default::default()
            },
        ),
        (15, pressure_config()),
    ] {
        for seed in seeds(stream) {
            let (bf, mut f) = pipelined(seed, &cfg, Experiment::LphiAbiC);
            allocate(&mut f, &AllocOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            verify(&bf.func, &f, &bf.inputs).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{f}"));
        }
    }
}
