//! Pins the checked-in `BENCH_pr10.json` claims: the telemetry PR is
//! perf-neutral through the pipeline. Every deterministic cell — move
//! counts, weighted counts, allocation stats, non-advisory trace
//! counters — is byte-identical to the `BENCH_pr9.json` baseline (the
//! metrics registry records only in the service layer, never inside a
//! trajectory cell), the snapshot moves to the v5 schema, and the
//! throughput object gains the compile-latency percentiles
//! (`latency_p50_ns`/`p90`/`p99`). The PR 9 headline (zero spilling at
//! trajectory scale) carries over unchanged. The snapshot is
//! regenerated with `cargo run --release -p tossa-bench --bin perf`.

use std::collections::BTreeMap;

use tossa::trace::json::{parse_json, Json};

/// Cache-policy counters exempted from cell identity (see bench_pr7.rs
/// and `bench-diff` — advisory, policy-dependent).
const ADVISORY: [&str; 2] = [
    "counter.analysis_cache_hits",
    "counter.analysis_cache_misses",
];

fn snapshot(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

/// Every deterministic scalar of every (suite × experiment) cell,
/// excluding timing and advisory counters.
fn deterministic_cells(doc: &Json) -> BTreeMap<(String, String), BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        for e in s
            .get("experiments")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let exp = e.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let mut fields = BTreeMap::new();
            for key in ["moves", "weighted"] {
                if let Some(v) = e.get(key).and_then(Json::as_u64) {
                    fields.insert(key.to_string(), v);
                }
            }
            for (group, prefix) in [("alloc", "alloc."), ("counters", "counter.")] {
                if let Some(obj) = e.get(group).and_then(Json::as_obj) {
                    for (k, v) in obj {
                        if let Some(v) = v.as_u64() {
                            let field = format!("{prefix}{k}");
                            if !ADVISORY.contains(&field.as_str()) {
                                fields.insert(field, v);
                            }
                        }
                    }
                }
            }
            out.insert((suite.to_string(), exp.to_string()), fields);
        }
    }
    out
}

#[test]
fn snapshot_is_well_formed_v5() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pr10.json");
    let text = std::fs::read_to_string(path).unwrap();
    tossa::trace::validate_json(&text).expect("BENCH_pr10.json is well-formed JSON");
    assert!(
        text.contains("\"schema\": \"tossa-bench-trajectory/5\""),
        "snapshot must use the v5 schema"
    );
}

/// The perf-neutrality claim: wiring telemetry through the *service*
/// moved nothing in the *pipeline*. Every deterministic cell — the
/// allocation group included this time, since the allocator is
/// untouched — matches BENCH_pr9.json exactly.
#[test]
fn all_deterministic_cells_are_identical_to_the_pr9_baseline() {
    let old = deterministic_cells(&snapshot("BENCH_pr9.json"));
    let new = deterministic_cells(&snapshot("BENCH_pr10.json"));
    assert_eq!(
        old.keys().collect::<Vec<_>>(),
        new.keys().collect::<Vec<_>>(),
        "suite × experiment matrix changed shape"
    );
    for (key, o) in &old {
        assert_eq!(
            o, &new[key],
            "{}/{}: deterministic drift vs BENCH_pr9.json",
            key.0, key.1
        );
    }
}

/// The PR 9 headline survives: zero spilling anywhere at trajectory
/// scale, so `spill_move_total` stays the pure parallel-copy count.
#[test]
fn zero_spilling_carries_over_from_pr9() {
    let cells = deterministic_cells(&snapshot("BENCH_pr10.json"));
    assert!(!cells.is_empty());
    for (key, c) in &cells {
        for field in ["alloc.spilled_vars", "alloc.reloads", "alloc.stores"] {
            assert_eq!(c[field], 0, "{}/{}: {field} must stay zero", key.0, key.1);
        }
        assert_eq!(
            c["alloc.spill_move_total"], c["alloc.moves_after"],
            "{}/{}: with zero spill traffic the total must be the move count",
            key.0, key.1
        );
    }
}

/// The v5 throughput dimension: the carried-over capacity figure stays
/// self-consistent and now reports the compile-latency percentiles in
/// monotone order.
#[test]
fn snapshot_carries_throughput_with_latency_percentiles() {
    let doc = snapshot("BENCH_pr10.json");
    let t = doc
        .get("throughput")
        .unwrap_or_else(|| panic!("BENCH_pr10.json lacks the throughput object"));
    for key in ["experiment", "threads", "functions", "wall_ns", "target_ms"] {
        assert!(t.get(key).is_some(), "throughput lacks {key:?}");
    }
    let fps = t
        .get("functions_per_sec")
        .and_then(Json::as_f64)
        .expect("functions_per_sec is a number");
    assert!(fps > 0.0, "sustained throughput must be positive: {fps}");
    let functions = t.get("functions").and_then(Json::as_u64).unwrap_or(0);
    let wall_ns = t.get("wall_ns").and_then(Json::as_u64).unwrap_or(0);
    assert!(functions > 0 && wall_ns > 0);
    let recomputed = functions as f64 * 1e9 / wall_ns as f64;
    assert!(
        (recomputed - fps).abs() / recomputed < 0.01,
        "functions_per_sec {fps} inconsistent with {functions} fns / {wall_ns} ns"
    );
    let pick = |key: &str| {
        t.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("throughput lacks {key} (v5 requires it)"))
    };
    let (p50, p90, p99) = (
        pick("latency_p50_ns"),
        pick("latency_p90_ns"),
        pick("latency_p99_ns"),
    );
    assert!(p50 > 0, "p50 latency must be positive");
    assert!(
        p50 <= p90 && p90 <= p99,
        "latency percentiles must be monotone: {p50} / {p90} / {p99}"
    );
}
