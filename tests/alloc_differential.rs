//! Differential-execution test layer for the register allocator.
//!
//! For every function of every bench suite, across all ten experiments
//! of the paper's matrix, the fully allocated code (physical DSP32
//! registers plus spill slots) must produce bit-identical outputs to the
//! pre-SSA source on the suite's input vectors. The suite runner's
//! `check` panics on the first divergence or trap, naming the function
//! and inputs.

use tossa::bench::runner::{run_suite_each_allocated, run_suite_each_allocated_with};
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::bench::suites::{all_suites, Suite};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::regalloc::{AllocOptions, IntervalPrecision, SpillPolicy};

/// Small synthetic-population scale: keeps the full 10-experiment matrix
/// affordable in CI; the perf trajectory run covers the full scale.
const SPEC_SCALE: usize = 6;

#[test]
fn allocated_code_matches_source_on_every_suite_and_experiment() {
    let opts = CoalesceOptions::default();
    let mut cells = 0usize;
    let mut functions = 0usize;
    for suite in all_suites(SPEC_SCALE) {
        let machine_regs = suite.functions[0].func.machine.regs().count();
        for &exp in Experiment::all() {
            // Panics on any output divergence between the allocated code
            // and the pre-SSA source.
            let results = run_suite_each_allocated(&suite, exp, &opts, true);
            for r in &results {
                let stats = r.alloc.as_ref().expect("allocation post-pass ran");
                assert!(
                    stats.regs_used > 0 && stats.regs_used <= machine_regs,
                    "{} / {exp:?} / {}: implausible register usage {}",
                    suite.name,
                    r.func.name,
                    stats.regs_used
                );
                assert!(
                    r.timings.alloc_ns > 0,
                    "{} / {exp:?}: allocation stage was not clocked",
                    suite.name
                );
            }
            functions += results.len();
            cells += 1;
        }
    }
    assert_eq!(
        cells,
        all_suites(SPEC_SCALE).len() * Experiment::all().len(),
        "the matrix must cover every suite × experiment cell"
    );
    assert!(functions > 0);
}

/// Both spill policies run the full matrix on the loop-heavy SPECint
/// suite with differential execution on — allocated output bit-identical
/// to the pre-SSA source under either policy — and the cost-driven
/// policy actually earns its keep: its static spill+move total never
/// exceeds spill-everywhere's, beats it strictly on at least one cell,
/// and its remat/split machinery demonstrably fires (while never firing
/// under the legacy policy).
///
/// Pinned to hull precision: per-range intervals dissolve every spill
/// on these populations (see `hole_precision_dominates_hull_intervals`
/// below), which would make a spill-policy comparison vacuous.
#[test]
fn spill_policies_are_execution_equivalent_and_cost_driven_wins_statically() {
    let opts = CoalesceOptions::default();
    let suite = all_suites(SPEC_SCALE)
        .into_iter()
        .find(|s| s.name == "SPECint")
        .expect("the loop-heavy suite exists");
    let policy_opts = |p: SpillPolicy| AllocOptions {
        spill_policy: p,
        precision: IntervalPrecision::Hull,
        ..Default::default()
    };
    let mut strict_wins = 0usize;
    let (mut remats, mut splits) = (0usize, 0usize);
    for &exp in Experiment::all() {
        let total = |rs: &[tossa::bench::runner::RunResult]| -> (usize, usize, usize) {
            rs.iter()
                .map(|r| r.alloc.as_ref().expect("alloc ran"))
                .fold((0, 0, 0), |(t, rm, sp), s| {
                    (t + s.spill_move_total(), rm + s.remats, sp + s.splits)
                })
        };
        // Differential execution (verify_each = true) panics on the
        // first output divergence from the pre-SSA source.
        let everywhere = total(&run_suite_each_allocated_with(
            &suite,
            exp,
            &opts,
            &policy_opts(SpillPolicy::Everywhere),
            true,
        ));
        let cost = total(&run_suite_each_allocated_with(
            &suite,
            exp,
            &opts,
            &policy_opts(SpillPolicy::CostDriven),
            true,
        ));
        assert_eq!(
            (everywhere.1, everywhere.2),
            (0, 0),
            "{exp:?}: spill-everywhere must never remat or split"
        );
        assert!(
            cost.0 <= everywhere.0,
            "{exp:?}: cost-driven regressed the spill+move total ({} > {})",
            cost.0,
            everywhere.0
        );
        if cost.0 < everywhere.0 {
            strict_wins += 1;
        }
        remats += cost.1;
        splits += cost.2;
    }
    assert!(strict_wins > 0, "cost-driven never beat spill-everywhere");
    assert!(
        remats > 0 && splits > 0,
        "remat ({remats}) and splitting ({splits}) must both fire on SPECint"
    );
}

/// The hole-aware intervals against their own hull collapse, across
/// every suite × experiment cell with differential execution on for
/// both sides: hole-based allocation never produces more spill+move
/// traffic than hull-based, and on the loop-heavy SPECint suite it wins
/// strictly on every cell (redefined loop webs are exactly where holes
/// open up).
#[test]
fn hole_precision_dominates_hull_intervals() {
    let opts = CoalesceOptions::default();
    let precision_opts = |p: IntervalPrecision| AllocOptions {
        precision: p,
        ..Default::default()
    };
    let total = |rs: &[tossa::bench::runner::RunResult]| -> usize {
        rs.iter()
            .map(|r| r.alloc.as_ref().expect("alloc ran").spill_move_total())
            .sum()
    };
    let mut cells = 0usize;
    for suite in all_suites(SPEC_SCALE) {
        // Differential execution on both sides for the headline suite:
        // each side individually executes bit-identically to the
        // pre-SSA source, so the two sides are execution-equivalent to
        // each other by transitivity. The remaining suites' hole-based
        // cells are execution-verified by the matrix test above, so
        // here they only contribute their static totals.
        let verify = suite.name == "SPECint";
        for &exp in Experiment::all() {
            let hull = total(&run_suite_each_allocated_with(
                &suite,
                exp,
                &opts,
                &precision_opts(IntervalPrecision::Hull),
                verify,
            ));
            let holes = total(&run_suite_each_allocated_with(
                &suite,
                exp,
                &opts,
                &precision_opts(IntervalPrecision::Ranges),
                verify,
            ));
            assert!(
                holes <= hull,
                "{} / {exp:?}: hole precision regressed spill+move total ({holes} > {hull})",
                suite.name
            );
            if suite.name == "SPECint" {
                assert!(
                    holes < hull,
                    "{} / {exp:?}: hole precision must win strictly here ({holes} == {hull})",
                    suite.name
                );
            }
            cells += 1;
        }
    }
    assert_eq!(
        cells,
        all_suites(SPEC_SCALE).len() * Experiment::all().len()
    );
}

/// The second-chance pass is live on real pipeline output: a seeded
/// high-pressure population (48-var pool, depth-2 loops — found by
/// deterministic seed search) makes a scan round evict split sub-webs
/// that the pass then re-assigns to registers left free across their
/// ranges. Execution stays bit-identical to the pre-SSA source under
/// both precisions, and the rescues never fire under hull precision
/// (no holes, nothing left free to probe).
#[test]
fn second_chance_rescues_fire_on_the_pressure_population() {
    let opts = CoalesceOptions::default();
    let cfg = SynthConfig {
        functions: 1,
        pool: 48,
        max_depth: 2,
        body_len: 16,
    };
    let suite = Suite {
        name: "pressure",
        functions: [187, 2377, 2516, 3114]
            .into_iter()
            .map(|s| generate_function(s, &cfg))
            .collect(),
    };
    let precision_opts = |p: IntervalPrecision| AllocOptions {
        precision: p,
        ..Default::default()
    };
    let chances = |rs: &[tossa::bench::runner::RunResult]| -> usize {
        rs.iter()
            .map(|r| r.alloc.as_ref().expect("alloc ran").second_chances)
            .sum()
    };
    let hull = chances(&run_suite_each_allocated_with(
        &suite,
        Experiment::LphiAbiC,
        &opts,
        &precision_opts(IntervalPrecision::Hull),
        true,
    ));
    assert_eq!(hull, 0, "hull precision has no holes to rescue into");
    let holes = chances(&run_suite_each_allocated_with(
        &suite,
        Experiment::LphiAbiC,
        &opts,
        &precision_opts(IntervalPrecision::Ranges),
        true,
    ));
    assert!(
        holes > 0,
        "the pressure population must trigger at least one second-chance rescue"
    );
}

/// The allocated form is genuinely physical: every operand variable of
/// every allocated function names a machine register, and the printed
/// form survives a parse round trip.
#[test]
fn allocated_form_is_physical_and_reparses() {
    use tossa::ir::parse::parse_function;
    let opts = CoalesceOptions::default();
    for suite in all_suites(2) {
        for r in run_suite_each_allocated(&suite, Experiment::LphiAbiC, &opts, false) {
            for v in r.func.vars() {
                let data = r.func.var(v);
                let used = r
                    .func
                    .all_insts()
                    .any(|(_, i)| r.func.inst(i).operands().any(|o| o.var == v));
                if used {
                    assert!(
                        data.reg.is_some(),
                        "{}: operand variable {} has no physical register",
                        r.func.name,
                        data.name
                    );
                }
            }
            let text = r.func.to_string();
            let back = parse_function(&text, &r.func.machine).unwrap_or_else(|e| {
                panic!("{}: allocated form does not reparse: {e}", r.func.name)
            });
            back.validate().unwrap();
        }
    }
}
