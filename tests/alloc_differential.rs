//! Differential-execution test layer for the register allocator.
//!
//! For every function of every bench suite, across all ten experiments
//! of the paper's matrix, the fully allocated code (physical DSP32
//! registers plus spill slots) must produce bit-identical outputs to the
//! pre-SSA source on the suite's input vectors. The suite runner's
//! `check` panics on the first divergence or trap, naming the function
//! and inputs.

use tossa::bench::runner::{run_suite_each_allocated, run_suite_each_allocated_with};
use tossa::bench::suites::all_suites;
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::regalloc::{AllocOptions, SpillPolicy};

/// Small synthetic-population scale: keeps the full 10-experiment matrix
/// affordable in CI; the perf trajectory run covers the full scale.
const SPEC_SCALE: usize = 6;

#[test]
fn allocated_code_matches_source_on_every_suite_and_experiment() {
    let opts = CoalesceOptions::default();
    let mut cells = 0usize;
    let mut functions = 0usize;
    for suite in all_suites(SPEC_SCALE) {
        let machine_regs = suite.functions[0].func.machine.regs().count();
        for &exp in Experiment::all() {
            // Panics on any output divergence between the allocated code
            // and the pre-SSA source.
            let results = run_suite_each_allocated(&suite, exp, &opts, true);
            for r in &results {
                let stats = r.alloc.as_ref().expect("allocation post-pass ran");
                assert!(
                    stats.regs_used > 0 && stats.regs_used <= machine_regs,
                    "{} / {exp:?} / {}: implausible register usage {}",
                    suite.name,
                    r.func.name,
                    stats.regs_used
                );
                assert!(
                    r.timings.alloc_ns > 0,
                    "{} / {exp:?}: allocation stage was not clocked",
                    suite.name
                );
            }
            functions += results.len();
            cells += 1;
        }
    }
    assert_eq!(
        cells,
        all_suites(SPEC_SCALE).len() * Experiment::all().len(),
        "the matrix must cover every suite × experiment cell"
    );
    assert!(functions > 0);
}

/// Both spill policies run the full matrix on the loop-heavy SPECint
/// suite with differential execution on — allocated output bit-identical
/// to the pre-SSA source under either policy — and the cost-driven
/// policy actually earns its keep: its static spill+move total never
/// exceeds spill-everywhere's, beats it strictly on at least one cell,
/// and its remat/split machinery demonstrably fires (while never firing
/// under the legacy policy).
#[test]
fn spill_policies_are_execution_equivalent_and_cost_driven_wins_statically() {
    let opts = CoalesceOptions::default();
    let suite = all_suites(SPEC_SCALE)
        .into_iter()
        .find(|s| s.name == "SPECint")
        .expect("the loop-heavy suite exists");
    let policy_opts = |p: SpillPolicy| AllocOptions {
        spill_policy: p,
        ..Default::default()
    };
    let mut strict_wins = 0usize;
    let (mut remats, mut splits) = (0usize, 0usize);
    for &exp in Experiment::all() {
        let total = |rs: &[tossa::bench::runner::RunResult]| -> (usize, usize, usize) {
            rs.iter()
                .map(|r| r.alloc.as_ref().expect("alloc ran"))
                .fold((0, 0, 0), |(t, rm, sp), s| {
                    (t + s.spill_move_total(), rm + s.remats, sp + s.splits)
                })
        };
        // Differential execution (verify_each = true) panics on the
        // first output divergence from the pre-SSA source.
        let everywhere = total(&run_suite_each_allocated_with(
            &suite,
            exp,
            &opts,
            &policy_opts(SpillPolicy::Everywhere),
            true,
        ));
        let cost = total(&run_suite_each_allocated_with(
            &suite,
            exp,
            &opts,
            &policy_opts(SpillPolicy::CostDriven),
            true,
        ));
        assert_eq!(
            (everywhere.1, everywhere.2),
            (0, 0),
            "{exp:?}: spill-everywhere must never remat or split"
        );
        assert!(
            cost.0 <= everywhere.0,
            "{exp:?}: cost-driven regressed the spill+move total ({} > {})",
            cost.0,
            everywhere.0
        );
        if cost.0 < everywhere.0 {
            strict_wins += 1;
        }
        remats += cost.1;
        splits += cost.2;
    }
    assert!(strict_wins > 0, "cost-driven never beat spill-everywhere");
    assert!(
        remats > 0 && splits > 0,
        "remat ({remats}) and splitting ({splits}) must both fire on SPECint"
    );
}

/// The allocated form is genuinely physical: every operand variable of
/// every allocated function names a machine register, and the printed
/// form survives a parse round trip.
#[test]
fn allocated_form_is_physical_and_reparses() {
    use tossa::ir::parse::parse_function;
    let opts = CoalesceOptions::default();
    for suite in all_suites(2) {
        for r in run_suite_each_allocated(&suite, Experiment::LphiAbiC, &opts, false) {
            for v in r.func.vars() {
                let data = r.func.var(v);
                let used = r
                    .func
                    .all_insts()
                    .any(|(_, i)| r.func.inst(i).operands().any(|o| o.var == v));
                if used {
                    assert!(
                        data.reg.is_some(),
                        "{}: operand variable {} has no physical register",
                        r.func.name,
                        data.name
                    );
                }
            }
            let text = r.func.to_string();
            let back = parse_function(&text, &r.func.machine).unwrap_or_else(|e| {
                panic!("{}: allocated form does not reparse: {e}", r.func.name)
            });
            back.validate().unwrap();
        }
    }
}
