//! Decision-provenance validation: the paper's worked examples run
//! under trace capture and the recorded pin/edge/copy/spill rationales
//! are pinned exactly, plus population-level completeness properties
//! (every inserted copy carries a provenance record; every spill has a
//! rationale).

use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::program_pinning;
use tossa::core::collect::{pinning_abi, pinning_sp};
use tossa::core::reconstruct::out_of_pinned_ssa;
use tossa::ir::{machine::Machine, parse::parse_function, Function};
use tossa::regalloc::{allocate, AllocOptions};
use tossa::ssa::to_ssa;
use tossa::trace::capture;
use tossa::trace::provenance::{Kind, Record, Verdict};

fn parse(text: &str) -> Function {
    let f = parse_function(text, &Machine::dsp32()).unwrap();
    f.validate().unwrap();
    f
}

fn edges(records: &[Record]) -> Vec<(&str, &str, &str, &Verdict)> {
    records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Edge {
                block,
                a,
                b,
                verdict,
                ..
            } => Some((block.as_str(), a.as_str(), b.as_str(), verdict)),
            _ => None,
        })
        .collect()
}

/// Strips the SSA version index: `%x1.4` -> `%x1`.
fn base(name: &str) -> &str {
    name.rsplit_once('.').map_or(name, |(head, _)| head)
}

const FIG5B: &str = "
func @fig5b {
entry:
  %c = input
  %x1 = make 1
  br %c, l, r
l:
  jump m
r:
  %x2 = make 2
  jump m
m:
  %x = phi [l: %x1], [r: %x2]
  %s = add %x, %x1
  ret %s
}";

/// Fig. 5: x1 stays live past the φ (the later `add` reads it), so the
/// (x, x1) affinity edge must be pruned — by Class 1 (dominance with
/// overlapping live ranges), witnessed by the (x, x1) pair itself —
/// while (x, x2) coalesces.
#[test]
fn fig5b_pruned_edge_is_class1_with_the_interfering_pair_as_witness() {
    let mut f = parse(FIG5B);
    let ((), trace) = capture(|| {
        program_pinning(&mut f, &Default::default());
    });
    let es = edges(&trace.records);
    assert_eq!(es.len(), 2, "{es:?}");
    let pruned: Vec<_> = es
        .iter()
        .filter(|(_, _, _, v)| !matches!(v, Verdict::Coalesced { .. }))
        .collect();
    assert_eq!(pruned.len(), 1, "{es:?}");
    let (block, a, b, verdict) = pruned[0];
    assert_eq!(*block, "m");
    assert_eq!((base(a), base(b)), ("%x", "%x1"));
    let Verdict::PrunedInitial { class, witness } = verdict else {
        panic!("expected initial pruning, got {verdict:?}");
    };
    assert_eq!(class.name(), "class1");
    assert_eq!(
        (base(&witness.0), base(&witness.1)),
        ("%x", "%x1"),
        "the witness is the interfering pair itself"
    );
    // The surviving edge coalesces x with x2.
    let coalesced: Vec<_> = es
        .iter()
        .filter(|(_, _, _, v)| matches!(v, Verdict::Coalesced { .. }))
        .collect();
    assert_eq!(coalesced.len(), 1);
    assert_eq!((base(coalesced[0].1), base(coalesced[0].2)), ("%x", "%x2"));
}

const FIG9: &str = "
func @fig9 {
entry:
  %cc = input
  br %cc, p1, p2
p1:
  %x = make 1
  %y = make 2
  jump m
p2:
  %z = make 3
  %y2 = make 4
  jump m
m:
  %bigx = phi [p1: %x], [p2: %z]
  %bigy = phi [p1: %y], [p2: %y2]
  %s = add %bigx, %bigy
  ret %s
}";

/// Fig. 9: x/y interfere and z/y2 interfere, but each pair feeds
/// *different* φs, so the joint block optimization coalesces all four
/// argument edges — the provenance stream must show four coalesced
/// verdicts and zero pruned ones.
#[test]
fn fig9_joint_optimization_coalesces_every_edge() {
    let mut f = parse(FIG9);
    let ((), trace) = capture(|| {
        program_pinning(&mut f, &Default::default());
    });
    let es = edges(&trace.records);
    assert_eq!(es.len(), 4, "{es:?}");
    for (block, a, b, v) in &es {
        assert_eq!(*block, "m");
        assert!(
            matches!(v, Verdict::Coalesced { .. }),
            "({a}, {b}) should coalesce: {v:?}"
        );
    }
}

const FIG3: &str = "
func @fig3 {
entry:
  %x0, %y0 = input
  %k = make 40
  jump head
head:
  %cond = cmplt %x0, %k
  br %cond, body, exit
body:
  %x0 = addi %x0, 1
  %y0 = add %y0, %k
  %x0 = call g(%x0, %y0)
  jump head
exit:
  ret %x0
}";

/// Fig. 3: x0's web is constrained through input (R0 def pin), call
/// (R0 result pin, R0/R1 argument use-pins), and return (R0 use-pin) —
/// each constraint must surface as a Pin record with its cause, and the
/// single copy the paper deems necessary (`x0+1` into the call's R0
/// slot) must surface as an `abi:R0` Copy record and nothing else.
#[test]
fn fig3_pin_causes_cover_the_abi_constraints() {
    let mut f = parse(FIG3);
    let ((), trace) = capture(|| {
        to_ssa(&mut f);
        pinning_sp(&mut f);
        pinning_abi(&mut f);
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    let pin = |cause: &str| -> Vec<(&str, &str)> {
        trace
            .records
            .iter()
            .filter_map(|r| match &r.kind {
                Kind::Pin {
                    var,
                    resource,
                    cause: c,
                } if c == cause => Some((base(var), resource.as_str())),
                _ => None,
            })
            .collect()
    };
    assert_eq!(pin("abi:input"), [("%x0", "R0"), ("%y0", "R1")]);
    assert_eq!(pin("abi:call"), [("%x0", "R0")]);
    assert_eq!(pin("abi:call-arg"), [("%x0", "R0"), ("%y0", "R1")]);
    assert_eq!(pin("abi:ret"), [("%x0", "R0")]);
    // The paper's one necessary copy: the incremented x0 cannot share
    // R0 with the loop-carried φ web, so it is moved into the call's
    // argument slot — and that is the *only* copy in the function.
    let copies: Vec<(&str, &str, &str)> = trace
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Copy { dst, src, cause } => Some((dst.as_str(), base(src), cause.as_str())),
            _ => None,
        })
        .collect();
    assert_eq!(copies, [("R0", "%x0", "abi:R0")]);
}

/// Causes a reconstruct-phase copy record can carry.
fn is_reconstruct_cause(cause: &str) -> bool {
    cause.starts_with("phi-edge:")
        || cause.starts_with("abi:")
        || cause.starts_with("repair:")
        || cause == "cycle"
}

/// Every `mov` the reconstruction inserts must carry a provenance
/// record: over a seeded random population, the number of
/// reconstruct-cause Copy records equals the stats' total copy count,
/// function by function.
#[test]
fn every_reconstruct_copy_has_a_provenance_record() {
    for seed in 0..24u64 {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let mut f = bf.func;
        to_ssa(&mut f);
        let (stats, trace) = capture(|| {
            pinning_sp(&mut f);
            pinning_abi(&mut f);
            program_pinning(&mut f, &Default::default());
            out_of_pinned_ssa(&mut f)
        });
        let recorded = trace
            .records
            .iter()
            .filter(|r| matches!(&r.kind, Kind::Copy { cause, .. } if is_reconstruct_cause(cause)))
            .count();
        assert_eq!(
            recorded,
            stats.total_copies(),
            "seed {seed}: {} copies counted, {recorded} recorded\n{f}",
            stats.total_copies()
        );
    }
}

/// A register file of 16 cannot hold 24 simultaneously-live values:
/// the allocator must spill, and every spill decision must carry a
/// rationale record in the documented grammar.
#[test]
fn spill_decisions_carry_rationales() {
    let n = 24;
    let mut text = String::from("func @pressure {\nentry:\n  %seed = input\n");
    for i in 0..n {
        text.push_str(&format!("  %v{i} = addi %seed, {i}\n"));
    }
    text.push_str("  %acc = make 0\n");
    for i in 0..n {
        let src = if i == 0 {
            "%acc".to_string()
        } else {
            format!("%acc{}", i - 1)
        };
        text.push_str(&format!("  %acc{i} = add {src}, %v{i}\n"));
    }
    text.push_str(&format!("  ret %acc{}\n}}\n", n - 1));
    let mut f = parse(&text);
    let (stats, trace) = capture(|| allocate(&mut f, &AllocOptions::default()).unwrap());
    assert!(stats.spilled_vars > 0, "no pressure: {stats:?}");
    let spills: Vec<(&str, &str)> = trace
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Spill { var, cause, .. } => Some((var.as_str(), cause.as_str())),
            _ => None,
        })
        .collect();
    assert!(
        spills.len() >= stats.spilled_vars,
        "{} spilled vars but only {} rationales: {spills:?}",
        stats.spilled_vars,
        spills.len()
    );
    for (var, cause) in &spills {
        assert!(var.starts_with('%'), "{var}");
        assert_spill_cause_grammar(cause);
    }
}

/// The documented `Kind::Spill` cause grammar, both policies:
/// `evicted-by:<var>@<reg>` / `no-register[:hint-failed=<reg>]`
/// (spill-everywhere) and `cost:weight=<w>,depth=<d>` / `remat:<opcode>`
/// / `split-at:<block>` / `second-chance:<reg>` (cost-driven).
fn assert_spill_cause_grammar(cause: &str) {
    if let Some(rest) = cause.strip_prefix("cost:") {
        let (w, d) = rest
            .split_once(',')
            .unwrap_or_else(|| panic!("malformed cost cause {cause:?}"));
        let w = w
            .strip_prefix("weight=")
            .unwrap_or_else(|| panic!("{cause:?}"));
        let d = d
            .strip_prefix("depth=")
            .unwrap_or_else(|| panic!("{cause:?}"));
        w.parse::<u64>().unwrap_or_else(|_| panic!("{cause:?}"));
        d.parse::<u32>().unwrap_or_else(|_| panic!("{cause:?}"));
    } else if let Some(op) = cause.strip_prefix("remat:") {
        assert!(!op.is_empty(), "{cause:?}");
    } else if let Some(block) = cause.strip_prefix("split-at:") {
        assert!(!block.is_empty(), "{cause:?}");
    } else if let Some(reg) = cause.strip_prefix("second-chance:") {
        assert!(!reg.is_empty(), "{cause:?}");
    } else {
        assert!(
            cause.starts_with("evicted-by:") || cause.starts_with("no-register"),
            "undocumented spill cause {cause:?}"
        );
    }
}

/// Golden pin of the PR9 `second-chance:<reg>` cause: on a seeded
/// pipeline output under heavy pressure (the same deterministic seed
/// the differential battery uses), a scan round evicts split sub-webs
/// that the second-chance pass then re-assigns — one grammar-conforming
/// `second-chance:` record per rescue, each naming a register that
/// exists on the machine, with no spill code behind it.
#[test]
fn second_chance_rescues_carry_register_rationales() {
    use tossa::bench::runner::run_experiment;
    use tossa::core::coalesce::CoalesceOptions;
    use tossa::core::Experiment;
    let bf = generate_function(
        187,
        &SynthConfig {
            functions: 1,
            pool: 48,
            max_depth: 2,
            body_len: 16,
        },
    );
    let mut f = run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default()).func;
    let (stats, trace) = capture(|| allocate(&mut f, &AllocOptions::default()).unwrap());
    assert!(
        stats.second_chances > 0,
        "seed 187 must take the second-chance path: {stats:?}"
    );
    let rescues: Vec<(&str, &str)> = trace
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Spill { var, cause, .. } if cause.starts_with("second-chance:") => {
                Some((var.as_str(), cause.as_str()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        rescues.len(),
        stats.second_chances,
        "one record per rescue: {rescues:?}"
    );
    for (var, cause) in &rescues {
        assert_spill_cause_grammar(cause);
        // Split sub-webs carry the `.s` suffix; `var_str` sanitizes the
        // dot to `_s` before appending the variable index.
        assert!(
            base(var).ends_with("_s"),
            "{var}: only split sub-webs are rescue candidates"
        );
        let reg = cause.strip_prefix("second-chance:").unwrap();
        assert!(
            f.machine.reg_by_name(reg).is_some(),
            "{cause:?} names no machine register"
        );
    }
}

/// A loop-shaped pressure function where the cost-driven policy's
/// decision kinds provably fire: 28 webs live across the loop (14
/// rematerializable `make` constants interleaved with 14 computed
/// values) plus `%n`/`%k`/`%z` against a 16-register file force at
/// least 15 webs out of registers, so by pigeonhole at least one
/// `make` is rematerialized and at least one computed web takes the
/// cost-eviction path.
fn loop_pressure_text() -> String {
    let n = 14;
    let mut text = String::from("func @looppressure {\nentry:\n  %n = input\n");
    for i in 0..n {
        text.push_str(&format!("  %c{i} = addi %n, {i}\n"));
        text.push_str(&format!("  %m{i} = make {}\n", 100 + i));
    }
    text.push_str("  %k = make 77\n  %z = make 0\n  jump head\nhead:\n");
    text.push_str("  %cc = cmplt %z, %n\n  br %cc, body, exit\nbody:\n");
    text.push_str("  %z = add %z, %k\n  jump head\nexit:\n  %acc = mov %z\n");
    for i in 0..n {
        text.push_str(&format!("  %acc = add %acc, %c{i}\n"));
        text.push_str(&format!("  %acc = add %acc, %m{i}\n"));
    }
    text.push_str("  ret %acc\n}\n");
    text
}

/// Captures the spill decisions of one allocation run as
/// `explain --diff` keys them: `"spill <var>" -> "[start, end] [cause]"`.
fn spill_decisions(policy: tossa::regalloc::SpillPolicy) -> Vec<(String, String)> {
    let mut f = parse(&loop_pressure_text());
    let (_, trace) = capture(|| {
        allocate(
            &mut f,
            &AllocOptions {
                spill_policy: policy,
                ..Default::default()
            },
        )
        .unwrap()
    });
    trace
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Spill {
                var,
                start,
                end,
                cause,
            } => Some((
                format!("spill {var}"),
                format!("[{start}, {end}] [{cause}]"),
            )),
            _ => None,
        })
        .collect()
}

/// Golden claim of the cost-driven policy: every spill record carries a
/// grammar-conforming cost rationale (`cost:`/`remat:`/`split-at:` —
/// never the legacy causes), and the decision kinds are all exercised
/// on the canonical loop-pressure function.
#[test]
fn cost_driven_spills_carry_cost_rationales() {
    let decisions = spill_decisions(tossa::regalloc::SpillPolicy::CostDriven);
    assert!(!decisions.is_empty(), "the pressure function never spilled");
    for (key, value) in &decisions {
        let cause = value
            .rsplit_once('[')
            .map(|(_, c)| c.trim_end_matches(']'))
            .unwrap();
        assert_spill_cause_grammar(cause);
        assert!(
            cause.starts_with("cost:")
                || cause.starts_with("remat:")
                || cause.starts_with("split-at:"),
            "{key}: cost-driven run produced legacy cause {cause:?}"
        );
    }
    assert!(
        decisions.iter().any(|(_, v)| v.contains("[remat:make]")),
        "no remat decision recorded: {decisions:?}"
    );
    assert!(
        decisions.iter().any(|(_, v)| v.contains("[cost:weight=")),
        "no cost eviction recorded: {decisions:?}"
    );
}

/// The `explain --diff` contract between the two policies: aligning
/// decisions by key, every spill decision present under both policies
/// with a *different* value is a recorded cause flip (the cause text
/// changed, not just the interval), so the diff lists exactly the webs
/// whose spill treatment changed.
#[test]
fn policy_diff_lists_only_cause_flips() {
    let everywhere = spill_decisions(tossa::regalloc::SpillPolicy::Everywhere);
    let cost = spill_decisions(tossa::regalloc::SpillPolicy::CostDriven);
    assert!(!everywhere.is_empty() && !cost.is_empty());
    let causes = |vs: &[(String, String)], key: &str| -> Vec<String> {
        vs.iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| {
                v.rsplit_once('[')
                    .unwrap()
                    .1
                    .trim_end_matches(']')
                    .to_string()
            })
            .collect()
    };
    let mut flips = 0usize;
    for (key, _) in &everywhere {
        let old = causes(&everywhere, key);
        let new = causes(&cost, key);
        if new.is_empty() {
            // Web spilled under spill-everywhere but not under the
            // cost-driven policy: the headline improvement, and still a
            // listed flip (value vs absent).
            flips += 1;
            continue;
        }
        if old != new {
            flips += 1;
            assert_ne!(
                old, new,
                "{key}: diff would list a flip without a cause change"
            );
        }
    }
    assert!(
        flips > 0,
        "the two policies agreed on every spill decision — the diff test lost its teeth"
    );
}
