//! Tier-1 chaos soak through the compile service (PR7 gate, scaled to
//! test size; CI runs the full 500-function release soak via the `serve`
//! binary).
//!
//! Invariants the service must uphold under fault injection:
//!
//! * no unwind escapes a worker (the soak itself completing proves the
//!   process survived; the contained-panic counter proves panics
//!   actually happened);
//! * the thread-local trace collector never leaks across a contained
//!   panic (the PR5 drop guards restore it mid-unwind);
//! * every failure is a structured error with a stable class;
//! * the degradation ladder never skips a rung;
//! * every completed function passed differential execution, and its
//!   report round-trips: the code text re-parses and re-verifies.

use tossa::bench::checked::fuzz_suite;
use tossa::bench::runner;
use tossa::ir::machine::Machine;
use tossa::ir::parse::parse_function;
use tossa::server::proto::default_inputs;
use tossa::server::report::{JobOutcome, SoakSummary};
use tossa::server::service::{run_batch, Job, ServiceConfig};
use tossa::server::{steps_are_contiguous, ChaosConfig, JobRequest, Rung};
use tossa::trace::service::JobCounter;

const SOAK_N: usize = 300;
const SEED: u64 = 0x50AC;

fn soak_jobs() -> Vec<Job> {
    fuzz_suite(SOAK_N, SEED)
        .functions
        .into_iter()
        .enumerate()
        .map(|(k, bf)| {
            let id = k as u64 + 1;
            let inputs = default_inputs(&bf.func, id);
            Job {
                req: JobRequest {
                    id,
                    func: bf.func,
                    experiment: None,
                    inputs,
                    inputs_seed: Some(id),
                },
                generator_seed: Some(SEED.wrapping_add(k as u64)),
            }
        })
        .collect()
}

#[test]
fn chaos_soak_upholds_every_service_invariant() {
    assert!(
        !tossa::trace::enabled(),
        "test starts with no trace collector installed"
    );
    let config = ServiceConfig {
        queue_cap: SOAK_N,
        chaos: Some(ChaosConfig {
            seed: 0xC4A0_5EED,
            rate_pct: 30,
        }),
        // Injected blowouts sleep just past the deadline, so a short one
        // keeps the soak fast; fuzz functions compile in milliseconds
        // even in debug, so genuine work stays far inside it.
        budget: tossa::server::Budget {
            deadline: std::time::Duration::from_secs(1),
            ..Default::default()
        },
        ..ServiceConfig::default()
    };
    let (reports, counters) = run_batch(config, soak_jobs());

    // The process survived and every job reported exactly once.
    assert_eq!(reports.len(), SOAK_N);
    let ids: std::collections::BTreeSet<u64> = reports.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), SOAK_N, "duplicate or missing job ids");

    // The soak gate proper.
    let summary = SoakSummary::from_reports(&reports);
    assert!(summary.holds(), "soak invariants violated:\n{summary}");
    assert_eq!(summary.total, SOAK_N);

    // Chaos actually exercised the envelope: faults landed and panics
    // were contained (rate 30% over 300 jobs makes both overwhelmingly
    // likely; the draw is deterministic, so this cannot flake).
    assert!(
        counters.get(JobCounter::ServiceFaultsInjected) > 0,
        "no faults injected — the soak tested nothing"
    );
    assert!(
        counters.get(JobCounter::PanicsContained) > 0,
        "no panic was ever contained — the containment boundary is untested"
    );
    assert!(
        !tossa::trace::enabled(),
        "a contained panic leaked a trace collector into the main thread"
    );

    for r in &reports {
        // Ladder discipline: one rung at a time, causes recorded.
        assert!(
            steps_are_contiguous(&r.ladder),
            "job {}: ladder skipped a rung: {:?}",
            r.id,
            r.ladder
        );
        for step in &r.ladder {
            assert!(!step.cause.is_empty(), "job {}: uncaused transition", r.id);
        }
        // Structured failures only.
        if r.outcome != JobOutcome::Completed || r.rung != Rung::Checked {
            assert!(
                r.error_class.is_some(),
                "job {}: {:?} failure without a class",
                r.id,
                r.outcome
            );
        }
        // Reports are machine-readable.
        tossa::trace::validate_json(&r.to_json())
            .unwrap_or_else(|e| panic!("job {}: bad report JSON: {e}", r.id));
    }

    // Completed jobs: the differential seal already ran in the service
    // (`verified`, gated by the summary); independently prove the report
    // is a usable artifact by re-parsing and re-verifying the code text.
    let suite = fuzz_suite(SOAK_N, SEED);
    let mut rechecked = 0;
    for r in reports
        .iter()
        .filter(|r| r.outcome == JobOutcome::Completed)
    {
        let code = r.code.as_deref().expect("completed job carries code");
        let func = parse_function(code, &Machine::dsp32())
            .unwrap_or_else(|e| panic!("job {}: code does not re-parse: {e}", r.id));
        let src = &suite.functions[(r.id - 1) as usize].func;
        let inputs = default_inputs(src, r.id);
        runner::verify(src, &func, &inputs)
            .unwrap_or_else(|e| panic!("job {}: re-verification failed: {e}", r.id));
        rechecked += 1;
    }
    assert!(
        rechecked > SOAK_N / 2,
        "only {rechecked} completions — chaos rate is drowning the pipeline"
    );

    // Counter bookkeeping adds up.
    assert_eq!(counters.get(JobCounter::JobsSubmitted), SOAK_N as u64);
    assert_eq!(
        counters.get(JobCounter::JobsCompletedChecked),
        summary.completed_checked as u64
    );
    assert_eq!(
        counters.get(JobCounter::JobsCompletedFallback),
        summary.completed_fallback as u64
    );
    assert_eq!(
        counters.get(JobCounter::JobsQuarantined),
        summary.quarantined as u64
    );
    tossa::trace::validate_json(&counters.to_json()).expect("counter JSON well-formed");
}

#[test]
fn clean_soak_is_all_checked_completions() {
    // Chaos off: the same population must complete entirely on the top
    // rung — the envelope adds robustness, not false degradation.
    let n = 60;
    let config = ServiceConfig {
        queue_cap: n,
        budget: tossa::server::Budget {
            deadline: std::time::Duration::from_secs(20),
            ..Default::default()
        },
        ..ServiceConfig::default()
    };
    let jobs: Vec<Job> = soak_jobs().into_iter().take(n).collect();
    let (reports, counters) = run_batch(config, jobs);
    assert_eq!(reports.len(), n);
    for r in &reports {
        assert_eq!(
            r.outcome,
            JobOutcome::Completed,
            "job {}: {:?}",
            r.id,
            r.error
        );
        assert_eq!(
            r.rung,
            Rung::Checked,
            "job {} degraded: {:?}",
            r.id,
            r.error
        );
        assert!(r.verified, "job {} did not verify", r.id);
        assert_eq!(r.attempts, 1, "job {} retried without chaos", r.id);
    }
    assert_eq!(counters.get(JobCounter::JobsCompletedChecked), n as u64);
    assert_eq!(counters.get(JobCounter::PanicsContained), 0);
}
