//! Property tests for the instructions-only invalidation fast path and
//! the printer/parser round trip.
//!
//! The fast path ([`AnalysisCache::invalidate_instructions`]) keeps the
//! CFG-shape analyses (CFG, dominators, loops) memoized across mutations
//! that only insert, remove, or rewrite non-branch instructions. Its
//! soundness claim is an equivalence: after such a mutation, the kept
//! memos plus the recomputed instruction-reading analyses must match a
//! full recompute from scratch. That equivalence is checked here on a
//! seeded population of random programs, each hit with a burst of
//! copy-insertion mutations shaped like the ones the coalescer and the
//! spiller perform.
//!
//! Seeds come from the same deterministic local generator as
//! `tests/proptests.rs` (no proptest crate in the offline build); every
//! failure message names the seed for direct replay.

use tossa::analysis::AnalysisCache;
use tossa::bench::suites::{all_suites, synth::generate_function, synth::SynthConfig};
use tossa::ir::parse::parse_function;
use tossa::ir::rng::SplitMix64;
use tossa::ir::{Function, InstData, Opcode};

const CASES: usize = 24;

fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x70_55A ^ stream);
    (0..CASES).map(|_| rng.random_range(0u64..10_000)).collect()
}

/// Applies a burst of instruction-only mutations: `mov` copies of
/// existing variables into fresh ones and `make` constants, inserted
/// right before block terminators — the same shape of edit the
/// coalescer's copy insertion and the spiller's reload rewriting make.
/// Never touches terminators, targets, or block structure.
fn mutate_instructions(f: &mut Function, rng: &mut SplitMix64) {
    let blocks: Vec<_> = f.blocks().collect();
    let vars: Vec<_> = f.vars().collect();
    for round in 0..4 {
        let b = blocks[rng.random_range(0u64..blocks.len() as u64) as usize];
        let at = f.block(b).insts.len() - 1; // before the terminator
        if round % 2 == 0 && !vars.is_empty() {
            let src = vars[rng.random_range(0u64..vars.len() as u64) as usize];
            let dst = f.new_var("fz");
            f.insert_inst(
                b,
                at,
                InstData::new(Opcode::Mov)
                    .with_defs(vec![dst.into()])
                    .with_uses(vec![src.into()]),
            );
        } else {
            let dst = f.new_var("fk");
            f.insert_inst(
                b,
                at,
                InstData::new(Opcode::Make)
                    .with_defs(vec![dst.into()])
                    .with_imm(rng.random_range(0u64..64) as i64),
            );
        }
    }
}

/// Asserts that every analysis served by `fast` (which went through the
/// instructions-only invalidation) matches a from-scratch computation in
/// `full` on the same function.
fn assert_analyses_match(
    f: &Function,
    fast: &mut AnalysisCache,
    full: &mut AnalysisCache,
    seed: u64,
) {
    let (cfg_a, cfg_b) = (fast.cfg(f), full.cfg(f));
    assert_eq!(cfg_a.rpo(), cfg_b.rpo(), "seed {seed}: rpo");
    for b in f.blocks() {
        assert_eq!(cfg_a.succs(b), cfg_b.succs(b), "seed {seed}: succs({b})");
        assert_eq!(cfg_a.preds(b), cfg_b.preds(b), "seed {seed}: preds({b})");
    }
    let (dt_a, dt_b) = (fast.domtree(f), full.domtree(f));
    for a in f.blocks() {
        for b in f.blocks() {
            assert_eq!(
                dt_a.dominates(a, b),
                dt_b.dominates(a, b),
                "seed {seed}: dominates({a}, {b})"
            );
        }
    }
    let (lp_a, lp_b) = (fast.loops(f), full.loops(f));
    assert_eq!(lp_a.headers(), lp_b.headers(), "seed {seed}: loop headers");
    for b in f.blocks() {
        assert_eq!(lp_a.depth(b), lp_b.depth(b), "seed {seed}: depth({b})");
    }
    let (lv_a, lv_b) = (fast.liveness(f), full.liveness(f));
    for b in f.blocks() {
        assert!(
            lv_a.live_in(b) == lv_b.live_in(b),
            "seed {seed}: live_in({b}) diverges"
        );
        assert!(
            lv_a.live_out(b) == lv_b.live_out(b),
            "seed {seed}: live_out({b}) diverges"
        );
    }
    let (lad_a, lad_b) = (fast.live_at_defs(f), full.live_at_defs(f));
    for v in f.vars() {
        assert!(
            lad_a.after_def(v) == lad_b.after_def(v),
            "seed {seed}: live_at_defs({v:?}) diverges"
        );
    }
}

/// After instruction-only mutations, `invalidate_instructions()` (kept
/// CFG/domtree/loops memos + recomputed liveness family) is
/// indistinguishable from a full `invalidate()` recompute.
#[test]
fn instructions_only_invalidation_matches_full() {
    for seed in seeds(10) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let mut f = bf.func;
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFA57);

        // Warm every memo on the pre-mutation function, as the pipeline
        // does before a pass runs.
        let mut fast = AnalysisCache::new();
        let _ = fast.live_at_defs(&f);
        let _ = fast.domtree(&f);
        let _ = fast.loops(&f);

        for burst in 0..3 {
            mutate_instructions(&mut f, &mut rng);
            f.validate()
                .unwrap_or_else(|e| panic!("seed {seed} burst {burst}: {e}"));
            fast.invalidate_instructions();
            let mut full = AnalysisCache::new();
            assert_analyses_match(&f, &mut fast, &mut full, seed);
        }
    }
}

/// The full `invalidate()` is itself consistent with two independent
/// fresh caches — a control for the test harness above.
#[test]
fn full_invalidation_self_consistent() {
    for seed in seeds(11).into_iter().take(6) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let mut f = bf.func;
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xF011);
        let mut cache = AnalysisCache::new();
        let _ = cache.live_at_defs(&f);
        mutate_instructions(&mut f, &mut rng);
        cache.invalidate();
        let mut fresh = AnalysisCache::new();
        assert_analyses_match(&f, &mut cache, &mut fresh, seed);
    }
}

/// Drops the printer's block-name comment column (`bb0:  ; entry`) —
/// the one piece of the textual form the parser deliberately discards.
fn strip_label_comments(text: &str) -> String {
    text.lines()
        .map(|l| l.split("  ; ").next().unwrap())
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Renumbers variable tokens (`%name.N`) by first occurrence, so two
/// prints that differ only in variable id assignment compare equal.
/// Distinctness is preserved: each distinct source token gets its own
/// canonical id. The parser allocates ids in first-mention order, which
/// need not match the builder's allocation order.
fn canon_vars(text: &str) -> String {
    let mut map: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find('%') {
        out.push_str(&rest[..pos]);
        let tok_start = &rest[pos + 1..];
        let len = tok_start
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
            .unwrap_or(tok_start.len());
        let tok = &tok_start[..len];
        let next = map.len();
        let id = *map.entry(tok).or_insert(next);
        out.push_str(&format!("%v{id}"));
        rest = &tok_start[len..];
    }
    out.push_str(rest);
    out
}

/// One print→parse→print round trip on a named function: everything but
/// the block-name comments and the variable id assignment must survive
/// byte-identically, and the normalized (comment-free) form must be a
/// true fixpoint of a second round trip.
fn check_roundtrip(f: &Function, what: &str) {
    let text = f.to_string();
    let reparsed =
        parse_function(&text, &f.machine).unwrap_or_else(|e| panic!("{what}: reparse failed: {e}"));
    let normalized = reparsed.to_string();
    assert_eq!(
        canon_vars(&normalized),
        canon_vars(&strip_label_comments(&text)),
        "{what}: print→parse→print dropped more than block-name comments"
    );
    let again = parse_function(&normalized, &f.machine)
        .unwrap_or_else(|e| panic!("{what}: second reparse failed: {e}"));
    assert_eq!(
        again.to_string(),
        normalized,
        "{what}: normalized print→parse→print is not a fixpoint"
    );
}

/// Printing a function and parsing it back loses nothing but block-name
/// comments, and is a fixpoint after that one normalization. Checked
/// over every benchmark suite.
#[test]
fn print_parse_roundtrip_all_suites() {
    for suite in all_suites(2) {
        for bf in &suite.functions {
            check_roundtrip(&bf.func, &format!("{}/{}", suite.name, bf.func.name));
        }
    }
}

/// The same round trip holds on random structured programs.
#[test]
fn print_parse_roundtrip_synth() {
    for seed in seeds(12) {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        check_roundtrip(&bf.func, &format!("seed {seed}"));
    }
}
