//! Heap-allocation regression gate for the flat-IR pipeline.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the full
//! pipeline (LΦ+ABI+C experiment plus register allocation) runs over the
//! `VALcc1` suite twice — once to warm lazily-initialized state (the
//! thread-local bitset pool, runtime one-time setup), once counted — and
//! the counted run must stay under a pinned allocation budget.
//!
//! The budget is an upper bound with headroom over the measured count at
//! the time the gate was pinned (see `BUDGET` below), so it only fires
//! on order-of-magnitude regressions: reverting the arena instruction
//! storage, the pooled analysis bitsets, or the dense interpreter
//! environment each cost far more than the slack. When a deliberate
//! change moves the count, re-pin the budget with the measured value
//! printed in the failure message.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts allocation *events* (`alloc` and growing `realloc` calls)
/// while enabled; bytes are ignored on purpose — the refactors this
/// gate protects reduce the number of heap round-trips, not peak size.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use tossa::bench::runner::{apply_alloc, run_experiment};
use tossa::bench::suites::kernels::valcc1;
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;

/// Allocation-event budget for one full pipeline sweep over `VALcc1`.
///
/// Pinned at ~25% above the 24,049 events measured when the flat-IR
/// storage landed; the pre-refactor pipeline exceeded it several times over.
const BUDGET: u64 = 30_000;

fn sweep() {
    let opts = CoalesceOptions::default();
    for bf in valcc1() {
        let mut r = run_experiment(&bf.func, Experiment::LphiAbiC, &opts);
        apply_alloc(&mut r);
    }
}

#[test]
fn pipeline_allocations_stay_under_budget() {
    // Warm-up: thread-local pools and one-time lazy state allocate here,
    // outside the counted window.
    sweep();

    ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    sweep();
    ENABLED.store(false, Ordering::SeqCst);
    let measured = ALLOCS.load(Ordering::SeqCst);

    assert!(
        measured > 0,
        "counting allocator saw no traffic; the gate is not wired up"
    );
    assert!(
        measured <= BUDGET,
        "pipeline over VALcc1 made {measured} heap allocations \
         (budget {BUDGET}); a flat-IR / pooled-bitset regression, or a \
         deliberate change that needs the budget re-pinned"
    );
}
