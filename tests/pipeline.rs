//! Pipeline-level integration tests: ψ-SSA end-to-end, table shape
//! assertions (the qualitative claims of the paper's §5), and metric
//! consistency.

use tossa::bench::metrics;
use tossa::bench::runner::{run_experiment, run_suite};
use tossa::bench::suites::{all_suites, Suite};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::interfere::InterferenceMode;
use tossa::core::{collect, program_pinning, reconstruct, Experiment};
use tossa::ir::{interp, machine::Machine, parse::parse_function};
use tossa::ssa::psi;

/// ψ-SSA: predicated code goes through ψ lowering, two-operand pinning of
/// the psel chain, and the ordinary out-of-SSA translation — with zero
/// copies for the chain.
#[test]
fn psi_conventional_pipeline() {
    let text = "
func @psi {
entry:
  %p1, %a1, %p2, %a2 = input
  %x = psi %p1 ? %a1, %p2 ? %a2
  %y = addi %x, 100
  ret %y
}";
    let f = parse_function(text, &Machine::dsp32()).unwrap();
    let mut g = f.clone();
    psi::lower_psis(&mut g);
    collect::pinning_sp(&mut g);
    collect::pinning_abi(&mut g); // ties each psel to its else input
    program_pinning(&mut g, &Default::default());
    let stats = reconstruct::out_of_pinned_ssa(&mut g);
    g.validate().unwrap();
    // The psel chain shares one resource: no copies along it.
    assert_eq!(stats.phi_copies, 0, "{g}");
    for ins in [[1, 10, 1, 20], [1, 10, 0, 20], [0, 10, 0, 20]] {
        assert_eq!(
            interp::run(&f, &ins, 1000).unwrap().outputs,
            interp::run(&g, &ins, 1000).unwrap().outputs,
            "{ins:?}"
        );
    }
}

fn totals(suites: &[Suite], exp: Experiment) -> usize {
    suites
        .iter()
        .map(|s| run_suite(s, exp, &CoalesceOptions::default(), false).moves)
        .sum()
}

/// Table 2 shape: with no ABI constraints, our coalescer never loses to
/// the naive-plus-Chaitin pipeline.
#[test]
fn table2_shape_ours_beats_naive() {
    let suites = all_suites(10);
    assert!(totals(&suites, Experiment::LphiC) <= totals(&suites, Experiment::CNoAbi));
}

/// Table 3 shape: with constraints, pinning-based ABI handling beats both
/// the no-φ-coalescing variant and the NaiveABI variant.
#[test]
fn table3_shape_abi_pinning_wins() {
    let suites = all_suites(10);
    let ours = totals(&suites, Experiment::LphiAbiC) as f64;
    // On SPECint-scale populations the post-Chaitin columns are near
    // ties (the paper itself reports an inversion against Sreedhar on
    // SPECint, Table 2, and discusses the cost approximation in [LIM1]);
    // allow a 5% + 2 move tolerance while requiring the overall shape.
    let labi = totals(&suites, Experiment::LabiC) as f64;
    let cabi = totals(&suites, Experiment::CAbi) as f64;
    assert!(ours <= labi * 1.05 + 2.0, "ours {ours} vs LABI+C {labi}");
    assert!(ours <= cabi * 1.05 + 2.0, "ours {ours} vs C {cabi}");
}

/// Table 4 shape: the "order of magnitude" comparison — each one-sided
/// pipeline leaves far more moves for a post-SSA coalescer.
#[test]
fn table4_shape_residual_moves() {
    let suites = all_suites(10);
    let ours = totals(&suites, Experiment::LphiAbi);
    let sphi = totals(&suites, Experiment::Sphi);
    let labi = totals(&suites, Experiment::Labi);
    // Naive φ replacement leaves much more than our φ coalescing.
    assert!(
        labi as f64 >= 2.0 * ours as f64,
        "LABI {labi} vs ours {ours}"
    );
    // The Sreedhar+NaiveABI pipeline leaves more than the pinning one.
    assert!(sphi >= ours, "Sphi {sphi} vs ours {ours}");
}

/// Table 5 shape: the pessimistic interference variant is much worse;
/// the optimistic one stays close to base (the paper's conclusion that
/// optimistic interference "still provides good results").
#[test]
fn table5_shape_variants() {
    let suites = all_suites(10);
    let weighted = |opts: &CoalesceOptions| -> u64 {
        suites
            .iter()
            .map(|s| run_suite(s, Experiment::LphiAbi, opts, false).weighted)
            .sum()
    };
    let base = weighted(&CoalesceOptions::default());
    let opt = weighted(&CoalesceOptions {
        mode: InterferenceMode::Optimistic,
        ..Default::default()
    });
    let pess = weighted(&CoalesceOptions {
        mode: InterferenceMode::Pessimistic,
        ..Default::default()
    });
    let depth = weighted(&CoalesceOptions {
        depth_priority: true,
        ..Default::default()
    });
    assert!(
        pess as f64 >= 1.5 * base as f64,
        "pess {pess} vs base {base}"
    );
    let drift = (opt as f64 - base as f64).abs() / base as f64;
    assert!(
        drift <= 0.10,
        "optimistic drift {drift} too large ({opt} vs {base})"
    );
    let ddrift = (depth as f64 - base as f64).abs() / base as f64;
    assert!(
        ddrift <= 0.10,
        "depth drift {ddrift} too large ({depth} vs {base})"
    );
}

/// The runner's `moves` field agrees with the metrics module.
#[test]
fn metrics_consistency() {
    for suite in all_suites(5) {
        for bf in &suite.functions {
            let r = run_experiment(&bf.func, Experiment::LphiAbiC, &Default::default());
            assert_eq!(r.moves, metrics::move_count(&r.func));
            assert_eq!(r.weighted, metrics::weighted_move_count(&r.func));
            assert!(r.weighted >= r.moves as u64);
        }
    }
}

/// Compile-time claim ([CC3]): the number of moves the Chaitin pass has
/// to look at is far smaller after SSA-level coalescing — its workload
/// (and therefore its cost, which is proportional to the number of move
/// instructions, §5) shrinks by a large factor.
#[test]
fn coalescing_workload_shrinks() {
    let suites = all_suites(10);
    let with_pinning = totals(&suites, Experiment::LphiAbi);
    let naive_phi = totals(&suites, Experiment::Labi);
    let naive_abi = totals(&suites, Experiment::Sphi);
    let total_naive = naive_phi.max(naive_abi);
    assert!(
        total_naive as f64 / with_pinning as f64 >= 2.0,
        "expected a large workload reduction: {with_pinning} vs {total_naive}"
    );
}
