//! Figure-exact expectations: each worked example of the paper is
//! reproduced and the implementation's behaviour is pinned down.

use tossa::analysis::{DefMap, DomTree, LiveAtDefs, Liveness};
use tossa::baselines::sreedhar::to_cssa;
use tossa::core::coalesce::{phi_gain, program_pinning};
use tossa::core::collect::{pinning_abi, pinning_sp};
use tossa::core::interfere::{InterferenceEnv, InterferenceMode};
use tossa::core::pinning::check_pinning;
use tossa::core::reconstruct::out_of_pinned_ssa;
use tossa::ir::cfg::Cfg;
use tossa::ir::{interp, machine::Machine, parse::parse_function, Function, Var};
use tossa::ssa::to_ssa;
use tossa::trace::{capture, Counter, CounterSet};

fn parse(text: &str) -> Function {
    let f = parse_function(text, &Machine::dsp32()).unwrap();
    f.validate().unwrap();
    f
}

fn var(f: &Function, name: &str) -> Var {
    f.vars()
        .find(|&v| f.var(v).name == name)
        .unwrap_or_else(|| panic!("no var {name}"))
}

const FIG1: &str = "
func @fig1 {
entry:
  %c, %p = input
  %a = load %p
  %q = autoadd %p, 1
  %b = load %q
  %d = call f(%a, %b)
  %e = add %c, %d
  %l = make 0x00A1
  %k = more %l, 0x2BFA
  %fo = sub %e, %k
  ret %fo
}";

const FIG2: &str = "
func @fig2 {
entry:
  %c = input
  %sp1!SP = make 1
  %x1 = make 2
  %y1 = make 3
  br %c, l, r
l:
  %sp3!SP = phi [entry: %sp1]
  ret %sp3
r:
  %sp4!SP = phi [entry: %x1]
  ret %sp4
}";

const FIG3: &str = "
func @fig3 {
entry:
  %x0, %y0 = input
  %k = make 40
  jump head
head:
  %cond = cmplt %x0, %k
  br %cond, body, exit
body:
  %x0 = addi %x0, 1
  %y0 = add %y0, %k
  %x0 = call g(%x0, %y0)
  jump head
exit:
  ret %x0
}";

const FIG5: &str = "
func @fig5 {
entry:
  %c = input
  br %c, l, r
l:
  %x1 = make 1
  jump m
r:
  %x2 = make 2
  jump m
m:
  %x = phi [l: %x1], [r: %x2]
  %s = add %x, %x1
  ret %s
}";

const FIG5B: &str = "
func @fig5b {
entry:
  %c = input
  %x1 = make 1
  br %c, l, r
l:
  jump m
r:
  %x2 = make 2
  jump m
m:
  %x = phi [l: %x1], [r: %x2]
  %s = add %x, %x1
  ret %s
}";

const FIG7: &str = "
func @fig7 {
entry:
  %c, %d = input
  %x = make 1
  jump l2test
l2test:
  br %c, l2body, l1
l2body:
  %x = addi %x, 1
  jump l2
l2:
  %x = addi %x, 1
  br %d, l2, l2exit
l2exit:
  jump l2test
l1:
  ret %x
}";

const FIG8: &str = "
func @fig8 {
entry:
  %c = input
  br %c, l, r
l:
  %z = call f1()
  jump m
r:
  %w = call f2()
  %z = mov %w
  jump m
m:
  %u = call f3(%z)
  ret %u
}";

const FIG9: &str = "
func @fig9 {
entry:
  %cc = input
  br %cc, p1, p2
p1:
  %x = make 1
  %y = make 2
  jump m
p2:
  %z = make 3
  %y2 = make 4
  jump m
m:
  %bigx = phi [p1: %x], [p2: %z]
  %bigy = phi [p1: %y], [p2: %y2]
  %s = add %bigx, %bigy
  ret %s
}";

const FIG10: &str = "
func @fig10 {
entry:
  %x1, %y1, %n = input
  %i = make 0
  jump head
head:
  %x2 = phi [entry: %x1], [latch: %x3]
  %y2 = phi [entry: %y1], [latch: %y3]
  %i2 = phi [entry: %i], [latch: %i3]
  %x3 = mov %y2
  %y3 = mov %x2
  %i3 = addi %i2, 1
  %c = cmplt %i3, %n
  br %c, latch, exit
latch:
  jump head
exit:
  %r = call f(%x3, %y3)
  ret %r
}";

const FIG12: &str = "
func @fig12 {
entry:
  %x0 = input
  jump head
head:
  %x = phi [entry: %x0], [latch: %x1]
  %x1 = addi %x, 1
  %r = call f(%x!R0)
  %c = cmplt %x1, %r
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x1
}";

const CHAIN: &str = "
func @chain {
entry:
  %p, %q = input
  jump head
head:
  %x = phi [entry: %p], [body: %y2]
  %y = phi [entry: %q], [body: %x2]
  %x2 = addi %x, 1
  %y2 = addi %y, -1
  %c = cmplt %x2, %y2
  br %c, body, exit
body:
  jump head
exit:
  ret %x, %y
}";

struct Env {
    f: Function,
    dt: DomTree,
    live: Liveness,
    defs: DefMap,
    lad: LiveAtDefs,
}

impl Env {
    fn new(f: Function) -> Env {
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let live = Liveness::compute(&f, &cfg);
        let defs = DefMap::compute(&f);
        let lad = LiveAtDefs::compute(&f, &live, &defs);
        Env {
            f,
            dt,
            live,
            defs,
            lad,
        }
    }
    fn env(&self) -> InterferenceEnv<'_> {
        InterferenceEnv {
            f: &self.f,
            dt: &self.dt,
            live: &self.live,
            defs: &self.defs,
            lad: &self.lad,
            mode: InterferenceMode::Exact,
        }
    }
}

/// Fig. 1: the ST120-style constraints round-trip through parsing and
/// the collect phase pins exactly what the figure pins.
#[test]
fn fig1_constraint_collection() {
    let mut f = parse(FIG1);
    pinning_abi(&mut f);
    // S0: inputs pinned to R0 and R1 (scalar order).
    let r0 = f.resources.by_name("R0").unwrap();
    assert_eq!(f.var(var(&f, "c")).pin, Some(r0));
    // S1: autoadd def and use share one resource ("P and Q must use the
    // same resource"); since p arrives in P0, the web chains onto P0.
    let q = var(&f, "q");
    let qpin = f.var(q).pin.unwrap();
    assert_eq!(f.var(var(&f, "p")).pin, Some(qpin));
    // S3: call result pinned to R0; arguments use-pinned to R0/R1.
    assert_eq!(f.var(var(&f, "d")).pin, Some(r0));
    // S6: more def tied to its use's resource.
    let k = var(&f, "k");
    let kpin = f.var(k).pin.unwrap();
    let more = f
        .all_insts()
        .find(|&(_, i)| f.inst(i).opcode == tossa::ir::Opcode::More)
        .map(|(_, i)| i)
        .unwrap();
    assert_eq!(f.inst(more).uses[0].pin, Some(kpin));
    // S8: output use-pinned to R0.
    let ret = f
        .all_insts()
        .find(|&(_, i)| f.inst(i).opcode == tossa::ir::Opcode::Ret)
        .map(|(_, i)| i)
        .unwrap();
    assert_eq!(f.inst(ret).uses[0].pin, Some(r0));
}

/// Fig. 2: pinning both φs of the SP example to SP is rejected as an
/// incorrect pinning (Case 6 / strong interference).
#[test]
fn fig2_incorrect_sp_pinning_detected() {
    let env = Env::new(parse(FIG2));
    let err = check_pinning(&env.f, &env.env()).unwrap_err();
    assert!(err.message.contains("case 6"), "{err}");
}

/// Fig. 3: x's web is pinned to R0 through input/call/return; the call
/// in the loop kills the φ value, which is repaired exactly once, and no
/// redundant copy is inserted for the argument already in R0.
#[test]
fn fig3_repair_and_redundancy_avoidance() {
    let mut f = parse(FIG3);
    let reference = interp::run(&f, &[38, 5], 100_000).unwrap();
    to_ssa(&mut f);
    pinning_sp(&mut f);
    pinning_abi(&mut f);
    program_pinning(&mut f, &Default::default());
    let stats = out_of_pinned_ssa(&mut f);
    // The φ web merges into R0 (x0 input, call result, return); the
    // `addi` result is killed by the argument staging of `g` (R0 is
    // rewritten by the first argument), requiring repair copies, but no
    // φ copy remains.
    assert_eq!(stats.phi_copies, 0, "{f}");
    assert!(stats.repair_copies <= 2, "{stats:?}");
    let after = interp::run(&f, &[38, 5], 100_000).unwrap();
    assert_eq!(after.outputs, reference.outputs);
}

/// Fig. 5: with x1 interfering, pinning only x2 yields exactly one move
/// (the figure's "better" solution (c)), not a repair pair (b).
#[test]
fn fig5_partial_phi_pinning() {
    let mut f = parse(FIG5);
    // NOTE: %x1 must dominate m for the use; rewrite: define x1 in entry.
    // (Handled below by a fixed variant.)
    let mut g = parse(FIG5B);
    let _ = &mut f;
    program_pinning(&mut g, &Default::default());
    assert_eq!(phi_gain(&g), 1);
    let x = var(&g, "x");
    assert_eq!(g.var(var(&g, "x2")).pin, g.var(x).pin);
    assert_ne!(g.var(var(&g, "x1")).pin, g.var(x).pin);
    let stats = out_of_pinned_ssa(&mut g);
    assert_eq!(stats.phi_copies, 1, "one move, no repair\n{g}");
    assert_eq!(stats.repair_copies, 0);
}

/// Fig. 7: the two-step worked example — both confluence points coalesce
/// completely (resources A = {x1, X2, X1} and B = {x3, x2, X3} in the
/// paper's naming), leaving zero φ copies.
#[test]
fn fig7_worked_example() {
    let mut f = parse(FIG7);
    // This CFG has a nested confluence (l2) and an outer one (l2test):
    // the inner-to-outer traversal must process l2 first.
    to_ssa(&mut f);
    program_pinning(&mut f, &Default::default());
    let stats = out_of_pinned_ssa(&mut f);
    assert_eq!(stats.phi_copies, 0, "full coalescing\n{f}");
}

/// Fig. 8 [CC1]: partial coalescing — the φ for z joins the physical R0
/// resource even though R0 already carries other definitions throughout
/// the function; a Chaitin-style coalescer working on whole pre-SSA
/// variables could not merge "z" with "R0" at all.
#[test]
fn fig8_partial_coalescing_into_r0() {
    let mut f = parse(FIG8);
    let src = f.clone();
    to_ssa(&mut f);
    tossa::ssa::opt::copy_propagate(&mut f);
    tossa::ssa::opt::dce(&mut f);
    pinning_abi(&mut f);
    let stats = program_pinning(&mut f, &Default::default());
    assert!(stats.merges >= 1, "{stats:?}\n{f}");
    // The φ's value lives in R0: the subset {z-versions} of the pre-SSA
    // variable is coalesced with the register.
    let z = f
        .vars()
        .filter(|&v| f.var(v).name == "z")
        .last()
        .expect("a z version");
    let r0 = f.resources.by_name("R0").unwrap();
    assert_eq!(f.var(z).pin, Some(r0), "partial coalescing with R0\n{f}");
    let recon = out_of_pinned_ssa(&mut f);
    assert_eq!(
        recon.phi_copies, 0,
        "no copy: both branches leave z in R0\n{f}"
    );
    for c in [0, 1] {
        assert_eq!(
            interp::run(&src, &[c], 1000).unwrap().outputs,
            interp::run(&f, &[c], 1000).unwrap().outputs
        );
    }
}

/// Fig. 9 [CS1]: treating a block's φs together beats Sreedhar's
/// one-at-a-time processing on the figure's shape.
#[test]
fn fig9_joint_block_optimization() {
    let src = parse(FIG9);
    let mut ours = src.clone();
    program_pinning(&mut ours, &Default::default());
    let ours_stats = out_of_pinned_ssa(&mut ours);
    // All four arguments are coalescible here: x,y interfere with each
    // other but belong to different φs.
    assert_eq!(ours_stats.phi_copies, 0, "{ours}");
    for c in [0, 1] {
        assert_eq!(
            interp::run(&src, &[c], 1000).unwrap().outputs,
            interp::run(&ours, &[c], 1000).unwrap().outputs
        );
    }
}

/// Fig. 10 [CS2]: parallel-copy placement solves the double-swap with
/// three moves on the swapping edge.
#[test]
fn fig10_parallel_copies() {
    let src = parse(FIG10);
    let mut f = src.clone();
    tossa::ssa::opt::copy_propagate(&mut f);
    tossa::ssa::opt::dce(&mut f);
    program_pinning(&mut f, &Default::default());
    let stats = out_of_pinned_ssa(&mut f);
    // The swap cycle on the latch edge costs at most 3 moves (2 + temp).
    assert!(
        stats.phi_copies + stats.temp_copies <= 3,
        "swap must use parallel copies: {stats:?}\n{f}"
    );
    for n in [1, 2, 5] {
        assert_eq!(
            interp::run(&src, &[7, 9, n], 10_000).unwrap().outputs,
            interp::run(&f, &[7, 9, n], 10_000).unwrap().outputs
        );
    }
}

/// Fig. 12 [LIM2]: the repair variable introduced by the reconstruction
/// is not coalesced with later uses — the documented limitation.
#[test]
fn fig12_repair_variable_limitation() {
    let mut f = parse(FIG12);
    pinning_sp(&mut f);
    pinning_abi(&mut f);
    program_pinning(&mut f, &Default::default());
    let stats = out_of_pinned_ssa(&mut f);
    // x is killed (the call's R0 result overwrites the argument's home
    // when they share R0) or a setup copy is needed: either way at least
    // one move survives that an optimal solution would fold away.
    assert!(
        stats.total_copies() >= 1,
        "the limitation costs at least one copy: {stats:?}\n{f}"
    );
    f.validate().unwrap();
}

/// The CSSA safety net: after Sreedhar conversion every φ congruence
/// class is interference-free even on adversarial chained φs.
#[test]
fn sreedhar_classes_are_conventional() {
    let mut f = parse(CHAIN);
    let src = f.clone();
    to_cssa(&mut f);
    // Conventional: merging every class into one name is semantics
    // preserving; go all the way out of SSA and compare.
    let mut g = src.clone();
    tossa::baselines::sreedhar_out_of_ssa(&mut g);
    g.validate().unwrap();
    assert_eq!(
        interp::run(&src, &[0, 10], 10_000).unwrap().outputs,
        interp::run(&g, &[0, 10], 10_000).unwrap().outputs
    );
}

// ── Golden counters ──────────────────────────────────────────────────
//
// Each figure's pipeline runs once under trace capture and the full
// counter set is pinned exactly (every counter not listed must be 0).
// When a counter drifts the failure message prints the actual values as
// ready-to-paste `(Counter, value)` pairs, so an intended change is a
// one-line snapshot update.

fn golden(label: &str, actual: &CounterSet, expected: &[(Counter, u64)]) {
    use std::fmt::Write as _;
    let mut diffs = String::new();
    for &c in Counter::ALL.iter() {
        let want = expected
            .iter()
            .find(|&&(k, _)| k == c)
            .map_or(0, |&(_, v)| v);
        if actual.get(c) != want {
            let _ = writeln!(diffs, "    (Counter::{c:?}, {}),", actual.get(c));
        }
    }
    assert!(
        diffs.is_empty(),
        "{label}: counter snapshot drifted; differing counters at their actual values:\n{diffs}"
    );
}

#[test]
fn fig1_golden_counters() {
    let mut f = parse(FIG1);
    let ((), data) = capture(|| {
        pinning_abi(&mut f);
    });
    golden("fig1", &data.counters, &[(Counter::PinsAbi, 10)]);
}

#[test]
fn fig2_golden_counters() {
    let ((), data) = capture(|| {
        let env = Env::new(parse(FIG2));
        check_pinning(&env.f, &env.env()).unwrap_err();
    });
    golden(
        "fig2",
        &data.counters,
        &[
            (Counter::InterfereClass3, 1),
            (Counter::LivenessIterations, 3),
        ],
    );
}

#[test]
fn fig3_golden_counters() {
    let mut f = parse(FIG3);
    let ((), data) = capture(|| {
        to_ssa(&mut f);
        pinning_sp(&mut f);
        pinning_abi(&mut f);
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig3",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 2),
            (Counter::CoalesceMerges, 3),
            (Counter::PinnedVars, 3),
            (Counter::AffinityEdges, 3),
            (Counter::OracleQueries, 7),
            (Counter::OracleCacheHits, 3),
            (Counter::CopiesAbi, 1),
            (Counter::PhisRemoved, 2),
            (Counter::LivenessIterations, 10),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::ParallelCopyGroups, 1),
            (Counter::PinsAbi, 6),
            (Counter::PinsPhi, 3),
        ],
    );
}

#[test]
fn fig5_golden_counters() {
    let mut f = parse(FIG5B);
    let ((), data) = capture(|| {
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig5",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 1),
            (Counter::CoalesceMerges, 2),
            (Counter::AffinityEdges, 2),
            (Counter::AffinityPrunedInitial, 1),
            (Counter::InterfereClass1, 1),
            (Counter::OracleQueries, 3),
            (Counter::OracleCacheHits, 1),
            (Counter::CopiesPhi, 1),
            (Counter::PhisRemoved, 1),
            (Counter::LivenessIterations, 4),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::ParallelCopyGroups, 1),
            (Counter::PinsPhi, 2),
        ],
    );
}

#[test]
fn fig7_golden_counters() {
    let mut f = parse(FIG7);
    let ((), data) = capture(|| {
        to_ssa(&mut f);
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig7",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 2),
            (Counter::CoalesceMerges, 5),
            (Counter::AffinityEdges, 4),
            (Counter::OracleQueries, 10),
            (Counter::OracleCacheHits, 4),
            (Counter::PhisRemoved, 2),
            (Counter::EdgesSplit, 1),
            (Counter::LivenessIterations, 18),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::PinsPhi, 5),
        ],
    );
}

#[test]
fn fig8_golden_counters() {
    let mut f = parse(FIG8);
    let ((), data) = capture(|| {
        to_ssa(&mut f);
        tossa::ssa::opt::copy_propagate(&mut f);
        tossa::ssa::opt::dce(&mut f);
        pinning_abi(&mut f);
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig8",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 1),
            (Counter::CoalesceMerges, 1),
            (Counter::PinnedVars, 4),
            (Counter::AffinityEdges, 1),
            (Counter::OracleQueries, 2),
            (Counter::OracleCacheHits, 1),
            (Counter::PhisRemoved, 1),
            (Counter::LivenessIterations, 8),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::PinsAbi, 6),
            (Counter::PinsPhi, 1),
        ],
    );
}

#[test]
fn fig9_golden_counters() {
    let mut f = parse(FIG9);
    let ((), data) = capture(|| {
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig9",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 2),
            (Counter::CoalesceMerges, 6),
            (Counter::AffinityEdges, 4),
            (Counter::OracleQueries, 10),
            (Counter::OracleCacheHits, 4),
            (Counter::PhisRemoved, 2),
            (Counter::LivenessIterations, 4),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::PinsPhi, 6),
        ],
    );
}

#[test]
fn fig10_golden_counters() {
    let mut f = parse(FIG10);
    let ((), data) = capture(|| {
        tossa::ssa::opt::copy_propagate(&mut f);
        tossa::ssa::opt::dce(&mut f);
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig10",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 3),
            (Counter::CoalesceMerges, 7),
            (Counter::AffinityEdges, 5),
            (Counter::AffinityPrunedInitial, 1),
            (Counter::InterfereClass4, 1),
            (Counter::OracleQueries, 10),
            (Counter::OracleCacheHits, 4),
            (Counter::CopiesPhi, 2),
            (Counter::CopiesTemp, 1),
            (Counter::PhisRemoved, 3),
            (Counter::LivenessIterations, 5),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::ParallelCopyGroups, 1),
            (Counter::ParallelCopyCycles, 1),
            (Counter::PinsPhi, 7),
        ],
    );
}

#[test]
fn fig12_golden_counters() {
    let mut f = parse(FIG12);
    let ((), data) = capture(|| {
        pinning_sp(&mut f);
        pinning_abi(&mut f);
        program_pinning(&mut f, &Default::default());
        out_of_pinned_ssa(&mut f);
    });
    golden(
        "fig12",
        &data.counters,
        &[
            (Counter::CongruenceClasses, 1),
            (Counter::CoalesceMerges, 1),
            (Counter::PinnedVars, 2),
            (Counter::AffinityEdges, 2),
            (Counter::AffinityPrunedInitial, 1),
            (Counter::InterfereClass1, 1),
            (Counter::OracleQueries, 3),
            (Counter::OracleCacheHits, 1),
            (Counter::CopiesPhi, 1),
            (Counter::CopiesAbi, 1),
            (Counter::PhisRemoved, 1),
            (Counter::LivenessIterations, 4),
            (Counter::AnalysisCacheHits, 5),
            (Counter::AnalysisCacheMisses, 6),
            (Counter::ParallelCopyGroups, 2),
            (Counter::PinsAbi, 4),
            (Counter::PinsPhi, 1),
        ],
    );
}

#[test]
fn sreedhar_golden_counters() {
    let mut f = parse(CHAIN);
    let ((), data) = capture(|| {
        to_cssa(&mut f);
    });
    golden(
        "sreedhar_chain",
        &data.counters,
        &[
            (Counter::CopiesPhi, 2),
            (Counter::LivenessIterations, 12),
            (Counter::AnalysisCacheHits, 8),
            (Counter::AnalysisCacheMisses, 10),
        ],
    );
}
