//! Pins the checked-in `BENCH_pr9.json` claims: the per-range interval
//! PR changes *only* the allocation post-pass. Every non-allocation
//! deterministic cell (move counts, weighted counts, non-advisory trace
//! counters) is byte-identical to the `BENCH_pr8.json` baseline; the
//! allocation cells may only improve — `spill_move_total` never exceeds
//! the PR 8 (hull-interval, cost-driven) figure and improves strictly
//! on every cell of the loop-heavy SPECint suite. The headline claim is
//! sharper than PR 8's: with lifetime holes visible, **no cell of the
//! whole matrix spills at all** — every `spilled_vars`, `reloads`, and
//! `stores` figure is zero, and `spill_move_total` collapses to the
//! pure parallel-copy move count. The snapshot is regenerated with
//! `cargo run --release -p tossa-bench --bin perf`.

use std::collections::BTreeMap;

use tossa::trace::json::{parse_json, Json};

/// Cache-policy counters exempted from cell identity (see bench_pr7.rs
/// and `bench-diff` — advisory, policy-dependent).
const ADVISORY: [&str; 2] = [
    "counter.analysis_cache_hits",
    "counter.analysis_cache_misses",
];

fn snapshot(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

/// Every deterministic scalar of every (suite × experiment) cell,
/// excluding timing and advisory counters. `include_alloc` controls
/// whether the `alloc.*` group is part of the extraction — the interval
/// PR legitimately moves those, so the identity check drops them and a
/// separate one-sided check covers them.
fn deterministic_cells(
    doc: &Json,
    include_alloc: bool,
) -> BTreeMap<(String, String), BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        for e in s
            .get("experiments")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let exp = e.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let mut fields = BTreeMap::new();
            for key in ["moves", "weighted"] {
                if let Some(v) = e.get(key).and_then(Json::as_u64) {
                    fields.insert(key.to_string(), v);
                }
            }
            for (group, prefix) in [("alloc", "alloc."), ("counters", "counter.")] {
                if group == "alloc" && !include_alloc {
                    continue;
                }
                if let Some(obj) = e.get(group).and_then(Json::as_obj) {
                    for (k, v) in obj {
                        if let Some(v) = v.as_u64() {
                            let field = format!("{prefix}{k}");
                            if !ADVISORY.contains(&field.as_str()) {
                                fields.insert(field, v);
                            }
                        }
                    }
                }
            }
            out.insert((suite.to_string(), exp.to_string()), fields);
        }
    }
    out
}

#[test]
fn snapshot_is_well_formed_v4() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pr9.json");
    let text = std::fs::read_to_string(path).unwrap();
    tossa::trace::validate_json(&text).expect("BENCH_pr9.json is well-formed JSON");
    assert!(
        text.contains("\"schema\": \"tossa-bench-trajectory/4\""),
        "snapshot must use the v4 schema"
    );
}

/// The translation-neutrality claim: swapping hull intervals for
/// per-range intervals shifted no move count, weighted count, or trace
/// counter — the pipeline in front of the allocator is untouched, and
/// the allocator's own counter schema kept its shape.
#[test]
fn non_alloc_cells_are_identical_to_the_pr8_baseline() {
    let old = deterministic_cells(&snapshot("BENCH_pr8.json"), false);
    let new = deterministic_cells(&snapshot("BENCH_pr9.json"), false);
    assert_eq!(
        old.keys().collect::<Vec<_>>(),
        new.keys().collect::<Vec<_>>(),
        "suite × experiment matrix changed shape"
    );
    for (key, o) in &old {
        assert_eq!(
            o, &new[key],
            "{}/{}: non-alloc deterministic drift vs BENCH_pr8.json",
            key.0, key.1
        );
    }
}

/// The interval claim, one-sided: with lifetime holes visible no cell
/// pays more spill+move instructions than the hull-interval baseline
/// did, and every SPECint cell — the only suite that spilled at the
/// trajectory scale — improves strictly. Register usage may shift
/// either way (holes let one register serve variables whose hulls
/// overlap), so unlike bench_pr8.rs there is no `regs_used` identity
/// here; the alloc counter key set itself must stay fixed.
#[test]
fn alloc_cells_only_improve_and_specint_improves_strictly() {
    let old = deterministic_cells(&snapshot("BENCH_pr8.json"), true);
    let new = deterministic_cells(&snapshot("BENCH_pr9.json"), true);
    let mut specint_cells = 0usize;
    for (key, o) in &old {
        let n = &new[key];
        let alloc_keys = |c: &BTreeMap<String, u64>| {
            c.keys()
                .filter(|k| k.starts_with("alloc."))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(
            alloc_keys(o),
            alloc_keys(n),
            "{}/{}: the alloc counter schema changed shape",
            key.0,
            key.1
        );
        let total = |c: &BTreeMap<String, u64>| c["alloc.spill_move_total"];
        assert!(
            total(n) <= total(o),
            "{}/{}: spill+move total regressed ({} > {})",
            key.0,
            key.1,
            total(n),
            total(o)
        );
        if key.0 == "SPECint" {
            specint_cells += 1;
            assert!(
                total(n) < total(o),
                "{}/{}: the loop-heavy suite must improve strictly ({} vs {})",
                key.0,
                key.1,
                total(n),
                total(o)
            );
        }
    }
    assert_eq!(
        specint_cells, 10,
        "SPECint must cover the full experiment matrix"
    );
}

/// The headline per-range result: at the trajectory scale the hole-aware
/// allocator spills nothing anywhere. Every cell's `spilled_vars`,
/// `reloads`, and `stores` are zero, so `spill_move_total` equals
/// `moves_after` exactly — the residual cost is pure parallel-copy
/// traffic, independent of the spill policy.
#[test]
fn hole_precision_dissolves_all_spilling_at_trajectory_scale() {
    let cells = deterministic_cells(&snapshot("BENCH_pr9.json"), true);
    assert!(!cells.is_empty());
    for (key, c) in &cells {
        for field in ["alloc.spilled_vars", "alloc.reloads", "alloc.stores"] {
            assert_eq!(
                c[field], 0,
                "{}/{}: {field} must be zero under per-range intervals",
                key.0, key.1
            );
        }
        assert_eq!(
            c["alloc.spill_move_total"], c["alloc.moves_after"],
            "{}/{}: with zero spill traffic the total must be the move count",
            key.0, key.1
        );
    }
}

/// The v4 throughput dimension carries over from PR 8 and stays
/// self-consistent.
#[test]
fn snapshot_carries_the_throughput_dimension() {
    let doc = snapshot("BENCH_pr9.json");
    let t = doc
        .get("throughput")
        .unwrap_or_else(|| panic!("BENCH_pr9.json lacks the v4 throughput object"));
    for key in ["experiment", "threads", "functions", "wall_ns", "target_ms"] {
        assert!(t.get(key).is_some(), "throughput lacks {key:?}");
    }
    let fps = t
        .get("functions_per_sec")
        .and_then(Json::as_f64)
        .expect("functions_per_sec is a number");
    assert!(fps > 0.0, "sustained throughput must be positive: {fps}");
    let functions = t.get("functions").and_then(Json::as_u64).unwrap_or(0);
    let wall_ns = t.get("wall_ns").and_then(Json::as_u64).unwrap_or(0);
    assert!(functions > 0 && wall_ns > 0);
    let recomputed = functions as f64 * 1e9 / wall_ns as f64;
    assert!(
        (recomputed - fps).abs() / recomputed < 0.01,
        "functions_per_sec {fps} inconsistent with {functions} fns / {wall_ns} ns"
    );
}
