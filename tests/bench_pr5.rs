//! Pins the checked-in `BENCH_pr5.json` claims: the decision-provenance
//! layer changed *nothing* about the translation — every deterministic
//! cell (move counts, weighted counts, allocation stats, trace
//! counters) is byte-identical to the `BENCH_pr4.json` baseline — and
//! recording itself is invisible: a traced run produces the same code
//! as an untraced run. The snapshot is regenerated with
//! `cargo run --release -p tossa-bench --bin perf`.

use std::collections::BTreeMap;

use tossa::bench::runner::run_experiment;
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::Experiment;
use tossa::trace::capture;
use tossa::trace::json::{parse_json, Json};

fn snapshot(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

/// Extracts every deterministic scalar of every (suite × experiment)
/// cell: moves, weighted, the alloc object, the counters object.
/// Timing fields are deliberately excluded.
fn deterministic_cells(doc: &Json) -> BTreeMap<(String, String), BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        for e in s
            .get("experiments")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let exp = e.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let mut fields = BTreeMap::new();
            for key in ["moves", "weighted"] {
                if let Some(v) = e.get(key).and_then(Json::as_u64) {
                    fields.insert(key.to_string(), v);
                }
            }
            for (group, prefix) in [("alloc", "alloc."), ("counters", "counter.")] {
                if let Some(obj) = e.get(group).and_then(Json::as_obj) {
                    for (k, v) in obj {
                        if let Some(v) = v.as_u64() {
                            fields.insert(format!("{prefix}{k}"), v);
                        }
                    }
                }
            }
            out.insert((suite.to_string(), exp.to_string()), fields);
        }
    }
    out
}

#[test]
fn snapshot_is_well_formed_v3() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pr5.json");
    let text = std::fs::read_to_string(path).unwrap();
    tossa::trace::validate_json(&text).expect("BENCH_pr5.json is well-formed JSON");
    assert!(
        text.contains("\"schema\": \"tossa-bench-trajectory/3\""),
        "snapshot must use the v3 schema"
    );
}

/// The bench-diff gate, inlined: adding the provenance layer must not
/// shift a single deterministic cell relative to the PR 4 baseline.
#[test]
fn deterministic_cells_are_identical_to_the_pr4_baseline() {
    let old = deterministic_cells(&snapshot("BENCH_pr4.json"));
    let new = deterministic_cells(&snapshot("BENCH_pr5.json"));
    let keys: Vec<_> = old.keys().collect();
    assert_eq!(
        keys,
        new.keys().collect::<Vec<_>>(),
        "suite × experiment matrix changed shape"
    );
    for (key, o) in &old {
        assert_eq!(
            o, &new[key],
            "{}/{}: deterministic drift vs BENCH_pr4.json",
            key.0, key.1
        );
    }
}

/// Recording provenance must be invisible to the translation: running
/// the pipeline under capture yields the same move counts as running it
/// untraced, and an untraced run emits no records at all.
#[test]
fn tracing_does_not_perturb_the_translation() {
    for seed in [3u64, 11, 19] {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let opts = Default::default();
        let untraced = run_experiment(&bf.func, Experiment::LphiAbiC, &opts);
        let (traced, trace) = capture(|| run_experiment(&bf.func, Experiment::LphiAbiC, &opts));
        assert_eq!(untraced.moves, traced.moves, "seed {seed}");
        assert_eq!(untraced.weighted, traced.weighted, "seed {seed}");
        assert!(
            !trace.records.is_empty(),
            "seed {seed}: traced run should carry provenance"
        );
    }
}
