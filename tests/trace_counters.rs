//! Differential counter validation: for the pipeline and for each
//! baseline, the copy counts reported on the trace sink must match an
//! independent recount of the `mov` instructions actually present in
//! the output IR.
//!
//! The recount exploits the arena discipline of [`Function`]: every
//! pass adds instructions with `alloc_inst`/`insert_inst`, which append
//! to the instruction arena, so an instruction id at or above the
//! pre-pass watermark was inserted by the pass under test.

use tossa::baselines::naive::naive_out_of_ssa;
use tossa::baselines::sreedhar::to_cssa;
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::program_pinning;
use tossa::core::collect::{pinning_abi, pinning_sp};
use tossa::core::reconstruct::out_of_pinned_ssa;
use tossa::ir::{Function, Opcode};
use tossa::ssa::to_ssa;
use tossa::trace::{capture, Counter};

/// Seeded fuzz population shared by all three differential checks.
fn population() -> Vec<Function> {
    (0..16u64)
        .map(|seed| {
            let bf = generate_function(
                seed,
                &SynthConfig {
                    functions: 1,
                    ..Default::default()
                },
            );
            let mut f = bf.func;
            to_ssa(&mut f);
            f
        })
        .collect()
}

/// First instruction id a pass running now could allocate.
fn watermark(f: &Function) -> usize {
    f.all_insts()
        .map(|(_, i)| i.index())
        .max()
        .map_or(0, |m| m + 1)
}

/// Counts the `mov`s in `f` inserted at or after `first_new`.
fn inserted_movs(f: &Function, first_new: usize) -> u64 {
    f.all_insts()
        .filter(|&(_, i)| i.index() >= first_new && f.inst(i).opcode == Opcode::Mov)
        .count() as u64
}

/// Pipeline: every copy the trace claims was inserted (φ + ABI + repair
/// + cycle temps) is a `mov` in the output, and vice versa.
#[test]
fn pipeline_copy_counters_match_recount() {
    for (k, mut f) in population().into_iter().enumerate() {
        let mark = watermark(&f);
        let ((), data) = capture(|| {
            pinning_sp(&mut f);
            pinning_abi(&mut f);
            program_pinning(&mut f, &Default::default());
            out_of_pinned_ssa(&mut f);
        });
        let recount = inserted_movs(&f, mark);
        assert_eq!(
            data.counters.copies_inserted(),
            recount,
            "seed {k}: trace says {} copies, the output IR holds {recount}\n{f}",
            data.counters.copies_inserted()
        );
    }
}

/// Naive baseline: φ copies + cycle temps equal the inserted `mov`s.
#[test]
fn naive_copy_counters_match_recount() {
    for (k, mut f) in population().into_iter().enumerate() {
        let mark = watermark(&f);
        let (stats, data) = capture(|| naive_out_of_ssa(&mut f));
        let traced = data.counters.get(Counter::CopiesPhi) + data.counters.get(Counter::CopiesTemp);
        let recount = inserted_movs(&f, mark);
        assert_eq!(
            traced, recount,
            "seed {k}: trace says {traced}, the output IR holds {recount} ({stats:?})\n{f}"
        );
    }
}

/// Sreedhar CSSA conversion: the traced φ-copy total equals the
/// inserted `mov`s.
#[test]
fn sreedhar_copy_counters_match_recount() {
    for (k, mut f) in population().into_iter().enumerate() {
        let mark = watermark(&f);
        let (stats, data) = capture(|| to_cssa(&mut f));
        let traced = data.counters.get(Counter::CopiesPhi);
        let recount = inserted_movs(&f, mark);
        assert_eq!(
            traced, recount,
            "seed {k}: trace says {traced}, the output IR holds {recount} ({stats:?})\n{f}"
        );
    }
}
