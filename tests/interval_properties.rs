//! Property battery for the per-range live intervals (DESIGN.md §15).
//!
//! Every property is an independent re-derivation: positions are read
//! off `block_span` directly, the liveness input comes from the
//! quadratic reference dataflow (`Liveness::compute_reference`), not
//! the worklist engine the builder uses, and the per-point walk
//! re-implements the backward scan from scratch. The population mixes
//! seeded pipeline outputs under register pressure (so holes, split
//! temps, and redefined webs all occur) with the fixed hole specimen.

use std::collections::HashSet;
use tossa::analysis::Liveness;
use tossa::bench::runner::run_experiment;
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::ir::cfg::Cfg;
use tossa::ir::machine::Machine;
use tossa::ir::parse::parse_function;
use tossa::ir::rng::SplitMix64;
use tossa::ir::Function;
use tossa::regalloc::intervals::{self, Intervals};

const CASES: usize = 16;

fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x1_7E0 ^ stream);
    (0..CASES).map(|_| rng.random_range(0u64..10_000)).collect()
}

fn population(stream: u64) -> Vec<(String, Function)> {
    let cfg = SynthConfig {
        functions: 1,
        pool: 32,
        max_depth: 2,
        body_len: 12,
    };
    let mut cases: Vec<(String, Function)> = seeds(stream)
        .into_iter()
        .map(|s| {
            let bf = generate_function(s, &cfg);
            let f =
                run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default()).func;
            (format!("seed {s}"), f)
        })
        .collect();
    cases.push((
        "hole specimen".into(),
        parse_function(
            "func @h {\nentry:\n  %a = input\n  %b = add %a, %a\n  %c = add %b, %b\n  \
             %a = make 1\n  %r = add %a, %c\n  ret %r\n}",
            &Machine::dsp32(),
        )
        .unwrap(),
    ));
    cases
}

/// All def positions (`base + 2k + 1`), use positions (`base + 2k`),
/// block bases, and block end positions of `f`, read off `block_span`.
struct Positions {
    defs: HashSet<(usize, u32)>,
    uses: HashSet<(usize, u32)>,
    bases: HashSet<u32>,
    ends: HashSet<u32>,
}

fn positions(f: &Function, ivs: &Intervals) -> Positions {
    let mut p = Positions {
        defs: HashSet::new(),
        uses: HashSet::new(),
        bases: HashSet::new(),
        ends: HashSet::new(),
    };
    for b in f.blocks() {
        let (base, end_pos) = ivs.block_span[b.index()];
        p.bases.insert(base);
        p.ends.insert(end_pos);
        for (k, i) in f.block_insts(b).enumerate() {
            let k = k as u32;
            let inst = f.inst(i);
            for o in inst.defs {
                p.defs.insert((o.var.index(), base + 2 * k + 1));
            }
            for o in inst.uses {
                p.uses.insert((o.var.index(), base + 2 * k));
            }
        }
    }
    p
}

/// Range lists are structurally sound: nonempty sorted disjoint ranges
/// whose envelope equals the hull, so the hull prefilter never lies
/// about the outer bounds.
#[test]
fn ranges_are_sorted_disjoint_nonempty_and_envelope_equals_hull() {
    for (label, f) in population(31) {
        let ivs = intervals::build(&f);
        for iv in &ivs.items {
            let rs = ivs.ranges_of(iv);
            let name = &f.var(iv.var).name;
            assert!(!rs.is_empty(), "{label}: {name} has no ranges");
            for &(s, e) in rs {
                assert!(s < e, "{label}: {name} empty range [{s},{e})");
                assert!(
                    iv.start <= s && e <= iv.end + 1,
                    "{label}: {name} range [{s},{e}) escapes hull [{},{}]",
                    iv.start,
                    iv.end
                );
            }
            for w in rs.windows(2) {
                assert!(
                    w[0].1 < w[1].0,
                    "{label}: {name} ranges not disjoint-sorted: {w:?}"
                );
            }
            assert_eq!(rs[0].0, iv.start, "{label}: {name} envelope start != hull");
            assert_eq!(
                rs[rs.len() - 1].1,
                iv.end + 1,
                "{label}: {name} envelope end != hull"
            );
        }
    }
}

/// Every range boundary is an event the program can explain: a range
/// starts at a def of its variable or at a block base (live-in), and
/// its last covered position is a use, a def (dead def), or a block
/// end position (live-out).
#[test]
fn range_endpoints_land_on_def_use_or_block_boundaries() {
    for (label, f) in population(32) {
        let ivs = intervals::build(&f);
        let pos = positions(&f, &ivs);
        for iv in &ivs.items {
            let v = iv.var.index();
            let name = &f.var(iv.var).name;
            for &(s, e) in ivs.ranges_of(iv) {
                assert!(
                    pos.defs.contains(&(v, s)) || pos.bases.contains(&s),
                    "{label}: {name} range starts at {s}, neither a def of it nor a block base"
                );
                let last = e - 1;
                assert!(
                    pos.uses.contains(&(v, last))
                        || pos.defs.contains(&(v, last))
                        || pos.ends.contains(&last),
                    "{label}: {name} range ends at {last}, neither a use/def of it nor a block end"
                );
            }
        }
    }
}

/// A from-scratch per-point walk — reference liveness, per-block
/// backward scan marking each live variable at each position — agrees
/// with `covers` at every position. Inter-block padding positions are
/// the one modeled divergence: the builder bridges a gap that is
/// exactly the unused padding slot, so there the walk's verdict on the
/// two neighboring real positions decides.
#[test]
fn per_point_walk_agrees_with_the_ranges() {
    for (label, f) in population(33) {
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute_reference(&f, &cfg);
        let ivs = intervals::build(&f);

        let mut marked: HashSet<(usize, u32)> = HashSet::new();
        let mut max_pos = 0u32;
        for b in f.blocks() {
            let (base, end_pos) = ivs.block_span[b.index()];
            max_pos = max_pos.max(end_pos + 1);
            let mut cursor: HashSet<usize> =
                live.live_exit(&f, b).iter().map(|v| v.index()).collect();
            for &v in &cursor {
                marked.insert((v, end_pos));
            }
            let insts: Vec<_> = f.block_insts(b).collect();
            for (k, &i) in insts.iter().enumerate().rev() {
                let k = k as u32;
                let inst = f.inst(i);
                let def_pos = base + 2 * k + 1;
                for o in inst.defs {
                    // Dead or not, the def occupies its position.
                    marked.insert((o.var.index(), def_pos));
                    cursor.remove(&o.var.index());
                }
                for &v in &cursor {
                    marked.insert((v, def_pos));
                }
                let use_pos = base + 2 * k;
                for o in inst.uses {
                    cursor.insert(o.var.index());
                }
                for &v in &cursor {
                    marked.insert((v, use_pos));
                }
            }
        }

        let pads: HashSet<u32> = f
            .blocks()
            .map(|b| ivs.block_span[b.index()].1 + 1)
            .collect();
        for iv in &ivs.items {
            let v = iv.var.index();
            let name = &f.var(iv.var).name;
            for p in 0..=max_pos {
                let expect = if pads.contains(&p) {
                    marked.contains(&(v, p.wrapping_sub(1))) && marked.contains(&(v, p + 1))
                } else {
                    marked.contains(&(v, p))
                };
                assert_eq!(
                    ivs.covers(iv, p),
                    expect,
                    "{label}: {name} coverage at position {p} disagrees with the walk"
                );
            }
        }
    }
}

/// Covered length is exactly the number of positions the walk marks
/// plus the bridged padding slots — never the hull length when a hole
/// exists — and at least one population member actually has a hole (so
/// the properties above are not vacuous about holes).
#[test]
fn covered_length_counts_live_positions_only() {
    let mut holed = 0usize;
    for (label, f) in population(34) {
        let ivs = intervals::build(&f);
        for iv in &ivs.items {
            let rs = ivs.ranges_of(iv);
            if rs.len() > 1 {
                holed += 1;
                assert!(
                    ivs.covered_len(iv) < u64::from(iv.end - iv.start) + 1,
                    "{label}: {} has {} ranges but hull-sized cover",
                    f.var(iv.var).name,
                    rs.len()
                );
            } else {
                assert_eq!(ivs.covered_len(iv), u64::from(iv.end - iv.start) + 1);
            }
            let by_points: u64 = (iv.start..=iv.end).filter(|&p| ivs.covers(iv, p)).count() as u64;
            assert_eq!(
                ivs.covered_len(iv),
                by_points,
                "{label}: {} covered_len disagrees with point count",
                f.var(iv.var).name
            );
        }
    }
    assert!(holed > 0, "no population member ever had a hole — vacuous");
}
