//! Bounds the greedy coalescer against the exhaustive optimal-pinning
//! oracle on small functions (the φ coalescing problem is NP-complete,
//! so only small instances can be checked exactly).

use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::bench::suites::{kernels, paper_examples};
use tossa::core::coalesce::program_pinning;
use tossa::core::collect::{pinning_abi, pinning_sp};
use tossa::core::exhaustive::exhaustive_phi_pinning;
use tossa::core::reconstruct::out_of_pinned_ssa;
use tossa::ir::Function;
use tossa::regalloc::{allocate, AllocOptions};
use tossa::ssa::to_ssa;

fn prepared(src: &Function) -> Function {
    let mut f = src.clone();
    to_ssa(&mut f);
    tossa::ssa::opt::copy_propagate(&mut f);
    tossa::ssa::opt::dce(&mut f);
    pinning_sp(&mut f);
    pinning_abi(&mut f);
    f
}

fn heuristic_moves(f: &Function) -> usize {
    let mut g = f.clone();
    program_pinning(&mut g, &Default::default());
    let _ = out_of_pinned_ssa(&mut g);
    g.count_moves()
}

/// Runs heuristic-vs-oracle over a population; returns
/// `(checked, total_heuristic, total_optimal, worst_gap)`.
fn sweep(functions: &[Function]) -> (usize, usize, usize, usize) {
    let mut checked = 0;
    let mut h_total = 0;
    let mut o_total = 0;
    let mut worst = 0;
    for src in functions {
        let f = prepared(src);
        let Some(opt) = exhaustive_phi_pinning(&f) else {
            continue;
        };
        let h = heuristic_moves(&f);
        assert!(
            h + 100 >= opt.best_moves, // sanity: oracle can never be wildly above
            "oracle exceeded heuristic absurdly on {}",
            src.name
        );
        checked += 1;
        h_total += h;
        o_total += opt.best_moves;
        worst = worst.max(h.saturating_sub(opt.best_moves));
    }
    (checked, h_total, o_total, worst)
}

#[test]
fn heuristic_near_optimal_on_paper_examples() {
    let funcs: Vec<Function> = paper_examples::examples()
        .into_iter()
        .map(|b| b.func)
        .collect();
    let (checked, h, o, worst) = sweep(&funcs);
    assert!(checked >= 6, "most examples are small enough: {checked}");
    assert!(
        h <= o + 2,
        "heuristic {h} vs optimal {o} (worst gap {worst})"
    );
}

#[test]
fn heuristic_near_optimal_on_small_kernels() {
    let funcs: Vec<Function> = kernels::valcc1().into_iter().map(|b| b.func).collect();
    let (checked, h, o, worst) = sweep(&funcs);
    assert!(checked >= 8, "checked {checked}");
    // Aggregate within one move per checked function of optimal.
    assert!(
        h <= o + checked,
        "heuristic {h} vs optimal {o} over {checked} kernels (worst gap {worst})"
    );
    assert!(worst <= 2, "single-function gap too large: {worst}");
}

#[test]
fn heuristic_near_optimal_on_random_programs() {
    let cfg = SynthConfig {
        functions: 1,
        pool: 5,
        max_depth: 2,
        body_len: 3,
    };
    let funcs: Vec<Function> = (100..160u64)
        .map(|seed| generate_function(seed, &cfg).func)
        .collect();
    let (checked, h, o, worst) = sweep(&funcs);
    assert!(checked >= 30, "checked {checked}");
    assert!(
        (h as f64) <= (o as f64) * 1.15 + checked as f64 * 0.5,
        "heuristic {h} vs optimal {o} over {checked} functions (worst gap {worst})"
    );
}

/// Pinned factor for the end-to-end bound below: the greedy pipeline's
/// *post-allocation* spill+move total may exceed the exhaustive oracle's
/// pre-allocation move optimum by at most this factor (the oracle count
/// is a lower bound — it pays no spill code and no allocation moves).
const ALLOC_ORACLE_FACTOR: f64 = 1.5;

/// Golden aggregates for the drift print: (population, greedy
/// post-allocation spill+move total, oracle move total). Not asserted
/// exactly — when the measured numbers move, the test prints the drift
/// so the constants (and any genuine regression) are visible in CI logs.
const ALLOC_ORACLE_GOLDEN: [(&str, usize, usize); 2] = [("examples", 21, 20), ("valcc1", 30, 34)];

/// End-to-end coverage bound: after full register allocation, the greedy
/// pipeline's spill+move cost stays within a pinned factor of the
/// exhaustive oracle's move optimum on every population small enough to
/// solve exactly.
#[test]
fn allocated_greedy_within_pinned_factor_of_oracle() {
    let populations: [(&str, Vec<Function>); 2] = [
        (
            "examples",
            paper_examples::examples()
                .into_iter()
                .map(|b| b.func)
                .collect(),
        ),
        (
            "valcc1",
            kernels::valcc1().into_iter().map(|b| b.func).collect(),
        ),
    ];
    for (name, funcs) in populations {
        let mut checked = 0usize;
        let mut greedy_total = 0usize;
        let mut oracle_total = 0usize;
        for src in &funcs {
            let f = prepared(src);
            let Some(opt) = exhaustive_phi_pinning(&f) else {
                continue;
            };
            let mut g = f.clone();
            program_pinning(&mut g, &Default::default());
            let _ = out_of_pinned_ssa(&mut g);
            let stats = allocate(&mut g, &AllocOptions::default())
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", src.name));
            checked += 1;
            greedy_total += stats.spill_move_total();
            oracle_total += opt.best_moves;
        }
        assert!(checked >= 8, "{name}: only {checked} functions solvable");
        let (_, gg, go) = ALLOC_ORACLE_GOLDEN
            .iter()
            .find(|(n, _, _)| *n == name)
            .copied()
            .unwrap();
        if (greedy_total, oracle_total) != (gg, go) {
            eprintln!(
                "golden drift on {name}: measured (greedy {greedy_total}, oracle {oracle_total}), \
                 pinned (greedy {gg}, oracle {go}) — update ALLOC_ORACLE_GOLDEN if intended"
            );
        }
        // One free move per function of slack covers tiny populations
        // where a single repair move would otherwise dominate the ratio.
        assert!(
            (greedy_total as f64) <= (oracle_total as f64) * ALLOC_ORACLE_FACTOR + checked as f64,
            "{name}: post-allocation greedy {greedy_total} exceeds \
             {ALLOC_ORACLE_FACTOR}x oracle {oracle_total} (+{checked} slack)"
        );
    }
}
