//! Property tests for the lock-free metrics registry (PR 10 tentpole):
//! the log-linear bucket scheme is a stable, invertible partition of
//! `u64`; snapshots are exact (no lost increments, even under
//! concurrent writers across shards); and merge is a commutative
//! monoid, so aggregation order — worker threads, soak snapshots,
//! multi-process scrapes — can never change a reported quantile.
//!
//! The bucket boundaries are part of the wire format (`le` labels in
//! the Prometheus exposition, `buckets` arrays in
//! `tossa-service-stats/1`), so a handful of golden values are pinned
//! here: drifting them silently corrupts every dashboard downstream.

use tossa::trace::metrics::{
    bucket_bounds, bucket_index, bucket_le, Histogram, HistogramSnapshot, BUCKET_COUNT, SUB_BUCKETS,
};

/// A deterministic probe set that hits every regime: the identity
/// range, every octave boundary ±1, wide interior points from an LCG,
/// and the saturating top.
fn probes() -> Vec<u64> {
    let mut vs: Vec<u64> = (0..256).collect();
    for bits in 3..64u32 {
        let p = 1u64 << bits;
        vs.extend([p - 1, p, p + 1]);
    }
    let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic LCG walk
    for _ in 0..4096 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        vs.push(x);
    }
    vs.extend([u64::MAX - 1, u64::MAX]);
    vs
}

#[test]
fn bucket_index_is_monotone_and_bounds_invert_it() {
    let mut vs = probes();
    vs.sort_unstable();
    let mut prev = 0usize;
    for (k, &v) in vs.iter().enumerate() {
        let i = bucket_index(v);
        assert!(i < BUCKET_COUNT, "bucket_index({v}) = {i} out of range");
        assert!(k == 0 || i >= prev, "bucket_index not monotone at {v}");
        prev = i;
        let (lo, hi) = bucket_bounds(i);
        assert!(
            lo <= v && (v < hi || hi == u64::MAX),
            "bucket {i} = [{lo}, {hi}) does not contain {v}"
        );
        assert!(v <= bucket_le(i), "le bound below member {v}");
    }
}

#[test]
fn buckets_tile_the_u64_range_without_gaps() {
    // Consecutive buckets abut exactly: each hi is the next lo, so the
    // partition has no gaps and no overlaps until the saturating top.
    let mut expect_lo = 0u64;
    for i in 0..BUCKET_COUNT {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, expect_lo, "bucket {i} leaves a gap");
        assert!(hi > lo, "bucket {i} is empty");
        if hi == u64::MAX {
            // Saturated top; every later bucket is unreachable padding.
            return;
        }
        expect_lo = hi;
    }
    panic!("partition never reached the top of the u64 range");
}

/// The boundaries are wire format. These exact values appear as
/// `le="…"` labels in the Prometheus exposition and must never drift.
#[test]
fn golden_bucket_boundaries_are_pinned() {
    for v in 0..SUB_BUCKETS as u64 {
        assert_eq!(bucket_index(v), v as usize, "identity range broken");
        assert_eq!(bucket_le(v as usize), v);
    }
    let golden: [(u64, usize, u64); 7] = [
        // (value, bucket, le)
        (8, 8, 8),
        (15, 15, 15),
        (16, 16, 17),
        (100, 36, 103),
        (1_000, 63, 1_023),
        (1_000_000, 143, 1_048_575),
        (1_000_000_000, 222, 1_006_632_959),
    ];
    for (v, idx, le) in golden {
        assert_eq!(bucket_index(v), idx, "bucket_index({v}) drifted");
        assert_eq!(bucket_le(idx), le, "bucket_le({idx}) drifted");
    }
    // Relative error bound: a recorded value is never reported (via its
    // le bound) more than 1/SUB_BUCKETS = 12.5% above its true value.
    for &v in probes().iter().filter(|&&v| v >= SUB_BUCKETS as u64) {
        let le = bucket_le(bucket_index(v));
        if le != u64::MAX {
            assert!(
                (le - v) as f64 / v as f64 <= 0.125,
                "bucket for {v} reports {le}: error above 12.5%"
            );
        }
    }
}

#[test]
fn snapshot_count_equals_sum_of_buckets_and_tracks_extremes() {
    let h = Histogram::new();
    let vs = probes();
    let mut sum = 0u64;
    for &v in &vs {
        h.record(v);
        sum = sum.wrapping_add(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, vs.len() as u64);
    assert_eq!(s.buckets.iter().sum::<u64>(), s.count, "count != Σ buckets");
    assert_eq!(s.sum, sum);
    assert_eq!(s.min, vs.iter().copied().min());
    assert_eq!(s.max, vs.iter().copied().max());
}

#[test]
fn no_increment_is_lost_under_concurrent_writers() {
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 20_000;
    let h = std::sync::Arc::new(Histogram::new());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                for k in 0..PER_THREAD {
                    // Spread across octaves so shards see real contention
                    // on distinct buckets, not one hot slot.
                    h.record((t as u64 + 1) * 1000 + k % 997);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("writer panicked");
    }
    let s = h.snapshot();
    assert_eq!(
        s.count,
        THREADS as u64 * PER_THREAD,
        "lost increments across shards"
    );
    assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
}

/// Splits `vs` into `parts` chunks, records each into its own
/// histogram, and merges the snapshots in the given order.
fn merged(vs: &[u64], parts: usize, order: impl Fn(usize) -> usize) -> HistogramSnapshot {
    let mut snaps: Vec<HistogramSnapshot> = (0..parts)
        .map(|p| {
            let h = Histogram::new();
            for (k, &v) in vs.iter().enumerate() {
                if k % parts == p {
                    h.record(v);
                }
            }
            h.snapshot()
        })
        .collect();
    let mut acc = HistogramSnapshot::empty();
    for k in 0..parts {
        acc.merge(&snaps[order(k)]);
    }
    // `merge` must not mutate its argument.
    for s in &mut snaps {
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }
    acc
}

#[test]
fn merge_is_order_independent_and_matches_single_recording() {
    let vs = probes();
    let whole = {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        h.snapshot()
    };
    let forward = merged(&vs, 7, |k| k);
    let backward = merged(&vs, 7, |k| 6 - k);
    let interleaved = merged(&vs, 7, |k| (k * 3) % 7);
    for (name, s) in [
        ("forward", &forward),
        ("backward", &backward),
        ("interleaved", &interleaved),
    ] {
        assert_eq!(s.count, whole.count, "{name}: count drifted");
        assert_eq!(s.sum, whole.sum, "{name}: sum drifted");
        assert_eq!(s.min, whole.min, "{name}: min drifted");
        assert_eq!(s.max, whole.max, "{name}: max drifted");
        assert_eq!(s.buckets, whole.buckets, "{name}: buckets drifted");
    }
}

#[test]
fn quantiles_are_deterministic_across_aggregation_orders() {
    let vs = probes();
    let a = merged(&vs, 5, |k| k);
    let b = merged(&vs, 5, |k| 4 - k);
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(a.quantile(q), b.quantile(q), "q={q} depends on order");
    }
    // Quantiles are monotone in q and bracketed by the exact extremes.
    let p50 = a.quantile(0.5).expect("nonempty");
    let p90 = a.quantile(0.9).expect("nonempty");
    let p99 = a.quantile(0.99).expect("nonempty");
    assert!(p50 <= p90 && p90 <= p99, "{p50} / {p90} / {p99}");
    assert!(a.quantile(0.0).expect("nonempty") >= a.min.expect("nonempty"));
    assert!(a.quantile(1.0).expect("nonempty") <= a.max.expect("nonempty"));
    assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
}

#[test]
fn quantile_error_is_bounded_by_the_bucket_scheme() {
    // Against a known distribution: 10_000 uniform values 1..=10_000,
    // the reported p50 must land within one bucket of the true median.
    let h = Histogram::new();
    for v in 1..=10_000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    let p50 = s.quantile(0.5).expect("nonempty");
    let true_median = 5_000u64;
    assert!(
        p50 >= true_median && (p50 - true_median) as f64 / true_median as f64 <= 0.125,
        "p50 {p50} outside the 12.5% envelope around {true_median}"
    );
    let snap_json = s.to_json();
    tossa::trace::validate_json(&snap_json).expect("snapshot JSON well-formed");
}
