//! Property-style tests for the cost-driven spill pipeline — remat,
//! live-range splitting, and victim ordering — over randomly generated
//! structured programs plus two fixed loop-pressure specimens that
//! guarantee the remat and split paths fire (so no property passes
//! vacuously).
//!
//! Like `alloc_properties.rs`, the invariants are independent
//! re-derivations: the must-written check re-implements the slot
//! dataflow rather than calling the allocator's verifier, and the
//! boundary check recomputes loops from scratch on the final function.

use std::collections::{HashMap, HashSet};
use tossa::analysis::{DomTree, LoopInfo};
use tossa::bench::runner::run_experiment;
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::ir::cfg::Cfg;
use tossa::ir::ids::{Block, Var};
use tossa::ir::machine::Machine;
use tossa::ir::parse::parse_function;
use tossa::ir::rng::SplitMix64;
use tossa::ir::{Function, Opcode};
use tossa::regalloc::cost::SpillCosts;
use tossa::regalloc::intervals;
use tossa::regalloc::scan::{scan, ScanFail};
use tossa::regalloc::{prepare, AllocOptions, AllocStats};

const CASES: usize = 24;

/// Deterministic seed sample, mirroring `alloc_properties.rs`.
fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0x70_55A ^ stream);
    (0..CASES).map(|_| rng.random_range(0u64..10_000)).collect()
}

/// High register pressure with loops, so the cost-driven decisions
/// (victim choice, remat, splitting) all have sites.
fn pressure_config() -> SynthConfig {
    SynthConfig {
        functions: 1,
        pool: 32,
        max_depth: 2,
        body_len: 12,
    }
}

fn pipelined(seed: u64, cfg: &SynthConfig) -> Function {
    let bf = generate_function(seed, cfg);
    run_experiment(&bf.func, Experiment::LphiAbiC, &CoalesceOptions::default()).func
}

/// Fixed specimen that must split (see the derivation in
/// `tossa-core`'s chaos tests): six loop-crossing webs against sixteen
/// heavier short webs overflow the register file outside the loop.
fn split_specimen() -> Function {
    let mut text = String::from("func @sp {\nentry:\n  %n = input\n");
    for k in 0..6 {
        text.push_str(&format!("  %h{k} = addi %n, {k}\n"));
    }
    text.push_str("  %t = make 0\n");
    for k in 0..16 {
        text.push_str(&format!("  %c{k} = addi %n, {}\n", 100 + k));
    }
    for k in 0..16 {
        for _ in 0..8 {
            text.push_str(&format!("  %t = add %t, %c{k}\n"));
        }
    }
    text.push_str("  %z = mov %t\n  jump head\nhead:\n");
    text.push_str("  %cc = cmplt %z, %n\n  br %cc, body, mid\nbody:\n");
    for k in 0..6 {
        text.push_str(&format!("  %z = add %z, %h{k}\n"));
    }
    text.push_str("  jump head\nmid:\n  %s = mov %z\n");
    for k in 0..6 {
        text.push_str(&format!("  %s = add %s, %h{k}\n"));
    }
    text.push_str("  ret %s\n}\n");
    parse_function(&text, &Machine::dsp32()).unwrap()
}

/// Fixed specimen that must rematerialize: long-lived `make` constants
/// under pressure are always cheaper to re-issue than to reload.
fn remat_specimen() -> Function {
    let n = 14;
    let mut text = String::from("func @rp {\nentry:\n  %n = input\n");
    for i in 0..n {
        text.push_str(&format!("  %c{i} = addi %n, {i}\n"));
        text.push_str(&format!("  %m{i} = make {}\n", 100 + i));
    }
    text.push_str("  %k = make 77\n  %z = make 0\n  jump head\nhead:\n");
    text.push_str("  %cc = cmplt %z, %n\n  br %cc, body, exit\nbody:\n");
    text.push_str("  %z = add %z, %k\n  jump head\nexit:\n  %acc = mov %z\n");
    for i in 0..n {
        text.push_str(&format!("  %acc = add %acc, %c{i}\n"));
        text.push_str(&format!("  %acc = add %acc, %m{i}\n"));
    }
    text.push_str("  ret %acc\n}\n");
    parse_function(&text, &Machine::dsp32()).unwrap()
}

fn prepared(f: &mut Function, label: &str) -> AllocStats {
    prepare(f, &AllocOptions::default())
        .unwrap_or_else(|e| panic!("{label}: {e}"))
        .stats
}

/// Rematerialized defs never reach a `spillld`: every `.m` temporary a
/// remat inserts is defined by `make` alone — never reloaded from a
/// slot, never stored to one — and each of its defs immediately
/// precedes the use it feeds (within the same block).
#[test]
fn rematerialized_defs_never_reach_a_spill_load() {
    let mut cases: Vec<(String, Function)> = seeds(20)
        .into_iter()
        .map(|s| (format!("seed {s}"), pipelined(s, &pressure_config())))
        .collect();
    cases.push(("remat specimen".into(), remat_specimen()));
    let mut remats = 0usize;
    for (label, f) in &mut cases {
        let stats = prepared(f, label);
        remats += stats.remats;
        for v in f.vars() {
            if !f.var(v).name.ends_with(".m") {
                continue;
            }
            for (_, i) in f.all_insts() {
                let inst = f.inst(i);
                if inst.defs.iter().any(|o| o.var == v) {
                    assert_eq!(
                        inst.opcode,
                        Opcode::Make,
                        "{label}: remat temp {} defined by {:?}",
                        f.var(v).name,
                        inst.opcode
                    );
                }
                assert!(
                    !(inst.opcode == Opcode::SpillStore && inst.uses.iter().any(|o| o.var == v)),
                    "{label}: remat temp {} spilled to a slot",
                    f.var(v).name
                );
            }
        }
    }
    assert!(remats > 0, "no case ever rematerialized — vacuous");
}

/// Every split boundary copy lands on a region boundary: a boundary
/// reload (`spillld` defining a `.s` hot sub-web) sits in a block
/// branching into the hot web's home region — a loop body, or the
/// single block of a non-loop region split — and a boundary store
/// (`spillst` of a `.s` web) sits inside that region in a block with a
/// successor outside it.
#[test]
fn split_points_land_on_region_boundaries() {
    let mut cases: Vec<(String, Function)> = seeds(21)
        .into_iter()
        .map(|s| (format!("seed {s}"), pipelined(s, &pressure_config())))
        .collect();
    cases.push(("split specimen".into(), split_specimen()));
    let mut splits = 0usize;
    for (label, f) in &mut cases {
        splits += prepared(f, label).splits;
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let loops = LoopInfo::compute(f, &cfg, &dt);
        let hot_vars: Vec<Var> = f
            .vars()
            .filter(|&v| f.var(v).name.ends_with(".s"))
            .collect();
        for hv in hot_vars {
            // The hot web's home region: the loop body holding its
            // non-boundary occurrences.
            let occ: Vec<Block> = f
                .blocks()
                .filter(|&b| {
                    f.block_insts(b).any(|i| {
                        let inst = f.inst(i);
                        !matches!(inst.opcode, Opcode::SpillLoad | Opcode::SpillStore)
                            && inst.operands().any(|o| o.var == hv)
                    })
                })
                .collect();
            // Candidate home regions: every loop body holding all the
            // occurrences (nested loops give several), plus the single
            // occurrence block itself (a non-loop region split — which
            // may also sit inside a loop body, so region inference is
            // ambiguous and the property quantifies over candidates).
            let mut regions: Vec<Vec<Block>> = loops
                .headers()
                .iter()
                .filter_map(|&h| loops.body(h))
                .filter(|body| occ.iter().all(|b| body.contains(b)))
                .map(<[Block]>::to_vec)
                .collect();
            if occ.len() == 1 {
                regions.push(vec![occ[0]]);
            }
            assert!(
                !regions.is_empty(),
                "{label}: hot web {} occurs outside any single region",
                f.var(hv).name
            );
            let fits = |body: &[Block]| -> bool {
                f.blocks().all(|b| {
                    f.block_insts(b).all(|i| {
                        let inst = f.inst(i);
                        if inst.opcode == Opcode::SpillLoad && inst.defs.iter().any(|o| o.var == hv)
                        {
                            // A boundary reload sits outside the region
                            // in a block branching into it.
                            !body.contains(&b) && f.succs(b).iter().any(|s| body.contains(s))
                        } else if inst.opcode == Opcode::SpillStore
                            && inst.uses.iter().any(|o| o.var == hv)
                        {
                            // A boundary store sits inside the region
                            // in a block with an exit successor.
                            body.contains(&b) && f.succs(b).iter().any(|s| !body.contains(s))
                        } else {
                            true
                        }
                    })
                })
            };
            assert!(
                regions.iter().any(|r| fits(r)),
                "{label}: no candidate region explains the boundary copies of {}",
                f.var(hv).name
            );
        }
    }
    assert!(splits > 0, "no case ever split — vacuous");
}

/// The scan engine's victim choice respects the normalized cost order:
/// every round-1 spill request is an unpinned web no costlier (weight
/// per *covered* position — holes relieve nothing and do not count)
/// than the interval whose start position triggered the conflict.
#[test]
fn spill_requests_respect_the_cost_order() {
    let mut conflicts = 0usize;
    for seed in seeds(22) {
        let f = pipelined(seed, &pressure_config());
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let loops = LoopInfo::compute(&f, &cfg, &dt);
        let costs = SpillCosts::compute(&f, &loops);
        let ivs = intervals::build(&f);
        let reqs = match scan(&f, &ivs, &HashSet::new(), Some(&costs)) {
            Ok(_) => continue,
            Err(ScanFail::Spill { reqs, .. }) => reqs,
            Err(ScanFail::Hard(e)) => panic!("seed {seed}: {e}"),
        };
        let norm = |v: Var| -> (u128, u128) {
            let iv = ivs.items.iter().find(|iv| iv.var == v).unwrap();
            (
                u128::from(costs.cost(v).weight),
                u128::from(ivs.covered_len(iv).max(1)),
            )
        };
        for req in &reqs {
            conflicts += 1;
            assert!(
                f.var(req.var).reg.is_none(),
                "seed {seed}: pinned {} spilled",
                f.var(req.var).name
            );
            // The interval(s) starting at the conflict position are the
            // blocked candidates the victim had to undercut (or be).
            let blocked: Vec<_> = ivs
                .items
                .iter()
                .filter(|iv| iv.start == req.at && iv.pre.is_none())
                .collect();
            assert!(
                !blocked.is_empty(),
                "seed {seed}: conflict at {} matches no interval start",
                req.at
            );
            let (vw, vl) = norm(req.var);
            assert!(
                blocked.iter().any(|s| {
                    let (sw, sl) = norm(s.var);
                    vw * sl <= sw * vl
                }),
                "seed {seed}: victim {} (weight {vw}/{vl}) costlier than every \
                 blocked interval at {}",
                f.var(req.var).name,
                req.at
            );
        }
    }
    assert!(
        conflicts > 0,
        "the pressure population never spilled — vacuous"
    );
}

/// The verifier's must-written-slot dataflow, re-derived by hand, holds
/// after splitting: every `spillld` of a slot is preceded by a
/// `spillst` of the same slot on all paths from entry.
#[test]
fn every_reload_is_must_written_after_splitting() {
    let mut cases: Vec<(String, Function)> = seeds(23)
        .into_iter()
        .map(|s| (format!("seed {s}"), pipelined(s, &pressure_config())))
        .collect();
    cases.push(("split specimen".into(), split_specimen()));
    let mut splits = 0usize;
    for (label, f) in &mut cases {
        splits += prepared(f, label).splits;
        let cfg = Cfg::compute(f);
        let loaded: HashSet<i64> = f
            .all_insts()
            .filter(|&(_, i)| f.inst(i).opcode == Opcode::SpillLoad)
            .map(|(_, i)| f.inst(i).imm)
            .collect();
        // One pass: per block, the ordered list of spill ops (is_store,
        // slot), so the per-slot dataflow never rescans instructions.
        let mut spill_ops: HashMap<Block, Vec<(bool, i64)>> = HashMap::new();
        for (b, i) in f.all_insts() {
            let inst = f.inst(i);
            match inst.opcode {
                Opcode::SpillStore => spill_ops.entry(b).or_default().push((true, inst.imm)),
                Opcode::SpillLoad => spill_ops.entry(b).or_default().push((false, inst.imm)),
                _ => {}
            }
        }
        let empty: Vec<(bool, i64)> = Vec::new();
        for slot in loaded {
            let gen = |b: Block| {
                spill_ops
                    .get(&b)
                    .unwrap_or(&empty)
                    .iter()
                    .any(|&(st, s)| st && s == slot)
            };
            let mut inb: HashMap<Block, bool> = f.blocks().map(|b| (b, true)).collect();
            inb.insert(f.entry, false);
            let mut changed = true;
            while changed {
                changed = false;
                for b in f.blocks() {
                    if b == f.entry {
                        continue;
                    }
                    let preds = cfg.preds(b);
                    let v = !preds.is_empty() && preds.iter().all(|&p| inb[&p] || gen(p));
                    if v != inb[&b] {
                        inb.insert(b, v);
                        changed = true;
                    }
                }
            }
            for b in f.blocks() {
                let mut written = inb[&b];
                for &(is_store, s) in spill_ops.get(&b).unwrap_or(&empty) {
                    if s != slot {
                        continue;
                    }
                    if is_store {
                        written = true;
                    } else {
                        assert!(
                            written,
                            "{label}: reload of slot {slot} in {} not written on all paths",
                            f.block(b).name
                        );
                    }
                }
            }
        }
    }
    assert!(splits > 0, "no case ever split — vacuous");
}
