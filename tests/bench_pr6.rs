//! Pins the checked-in `BENCH_pr6.json` claims: the flat-IR layout work
//! is a *layout* change, not a semantics change — every deterministic
//! cell (move counts, weighted counts, allocation stats, trace
//! counters) is byte-identical to the `BENCH_pr5.json` baseline except
//! the two advisory cache-policy counters, which legitimately shift
//! when the instructions-only invalidation fast path turns misses into
//! hits — and the headline perf claim holds: the allocated end-to-end
//! wall is at or below the unallocated PR 1 wall. The snapshot is
//! regenerated with `cargo run --release -p tossa-bench --bin perf`.

use std::collections::BTreeMap;

use tossa::bench::runner::run_experiment;
use tossa::bench::suites::synth::{generate_function, SynthConfig};
use tossa::core::Experiment;
use tossa::trace::json::{parse_json, Json};
use tossa::trace::{capture, capture_counters};

/// Cache-policy counters: *how often* the analysis cache hit is a
/// property of the invalidation policy, not of the translation, so the
/// fast path is allowed (expected, even) to shift these. `bench-diff`
/// exempts the same two fields.
const ADVISORY: [&str; 2] = [
    "counter.analysis_cache_hits",
    "counter.analysis_cache_misses",
];

fn snapshot(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

/// Extracts every deterministic scalar of every (suite × experiment)
/// cell: moves, weighted, the alloc object, the counters object.
/// Timing fields and the advisory cache-policy counters are excluded.
fn deterministic_cells(doc: &Json) -> BTreeMap<(String, String), BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        for e in s
            .get("experiments")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let exp = e.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let mut fields = BTreeMap::new();
            for key in ["moves", "weighted"] {
                if let Some(v) = e.get(key).and_then(Json::as_u64) {
                    fields.insert(key.to_string(), v);
                }
            }
            for (group, prefix) in [("alloc", "alloc."), ("counters", "counter.")] {
                if let Some(obj) = e.get(group).and_then(Json::as_obj) {
                    for (k, v) in obj {
                        if let Some(v) = v.as_u64() {
                            let field = format!("{prefix}{k}");
                            if !ADVISORY.contains(&field.as_str()) {
                                fields.insert(field, v);
                            }
                        }
                    }
                }
            }
            out.insert((suite.to_string(), exp.to_string()), fields);
        }
    }
    out
}

#[test]
fn snapshot_is_well_formed_v3() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pr6.json");
    let text = std::fs::read_to_string(path).unwrap();
    tossa::trace::validate_json(&text).expect("BENCH_pr6.json is well-formed JSON");
    assert!(
        text.contains("\"schema\": \"tossa-bench-trajectory/3\""),
        "snapshot must use the v3 schema"
    );
}

/// The PR's headline claim, pinned from the two checked-in snapshots:
/// the allocated end-to-end wall recovered to (below) the wall of the
/// PR 1 trajectory, which did not run allocation at all.
#[test]
fn allocated_wall_is_at_or_below_the_unallocated_pr1_wall() {
    let wall = |name| {
        snapshot(name)
            .get("end_to_end_wall_ns")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{name}: missing end_to_end_wall_ns"))
    };
    let (pr1, pr6) = (wall("BENCH_pr1.json"), wall("BENCH_pr6.json"));
    assert!(
        pr6 <= pr1,
        "BENCH_pr6 wall {pr6} ns exceeds the PR 1 target {pr1} ns"
    );
}

/// The bench-diff gate, inlined: the flat-IR refactor must not shift a
/// single non-advisory deterministic cell relative to the PR 5
/// baseline.
#[test]
fn deterministic_cells_are_identical_to_the_pr5_baseline() {
    let old = deterministic_cells(&snapshot("BENCH_pr5.json"));
    let new = deterministic_cells(&snapshot("BENCH_pr6.json"));
    let keys: Vec<_> = old.keys().collect();
    assert_eq!(
        keys,
        new.keys().collect::<Vec<_>>(),
        "suite × experiment matrix changed shape"
    );
    for (key, o) in &old {
        assert_eq!(
            o, &new[key],
            "{}/{}: deterministic drift vs BENCH_pr5.json",
            key.0, key.1
        );
    }
}

/// The trajectory's timed pass now runs under a counters-only capture.
/// That capture must be invisible twice over: the translation is
/// unchanged relative to an untraced run, and the counter totals are
/// identical to what a full (span + provenance) capture counts.
#[test]
fn counters_only_capture_matches_the_full_capture() {
    for seed in [3u64, 11, 19] {
        let bf = generate_function(
            seed,
            &SynthConfig {
                functions: 1,
                ..Default::default()
            },
        );
        let opts = Default::default();
        let untraced = run_experiment(&bf.func, Experiment::LphiAbiC, &opts);
        let (counted, set) =
            capture_counters(|| run_experiment(&bf.func, Experiment::LphiAbiC, &opts));
        let (_, full) = capture(|| run_experiment(&bf.func, Experiment::LphiAbiC, &opts));
        assert_eq!(untraced.moves, counted.moves, "seed {seed}");
        assert_eq!(untraced.weighted, counted.weighted, "seed {seed}");
        assert_eq!(
            set, full.counters,
            "seed {seed}: counters-only capture disagrees with full capture"
        );
        assert!(
            !full.records.is_empty(),
            "seed {seed}: full capture should still carry provenance"
        );
    }
}
