//! Schema checks for the trace exporters: every JSONL record and the
//! Chrome trace document must be well-formed JSON with the advertised
//! keys, validated with the crate's own recursive-descent checker (the
//! build has no serde). CI runs these alongside the `trace-smoke` step
//! that produces the real artifacts.

use tossa::bench::runner::run_suite_each_traced;
use tossa::bench::suites::{paper_examples, Suite};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::trace::{chrome_trace, jsonl_record, validate_json, Counter, TraceData};

fn traced_suite() -> Vec<(String, TraceData)> {
    let suite = Suite {
        name: "example1-8",
        functions: paper_examples::examples(),
    };
    run_suite_each_traced(
        &suite,
        Experiment::LphiAbiC,
        &CoalesceOptions::default(),
        false,
    )
    .into_iter()
    .enumerate()
    .map(|(k, (_, trace))| (suite.functions[k].func.name.clone(), trace))
    .collect()
}

#[test]
fn jsonl_records_are_valid_and_complete() {
    let traces = traced_suite();
    assert!(!traces.is_empty());
    for (func, trace) in &traces {
        let line = jsonl_record(func, "LphiAbiC", trace);
        assert!(!line.contains('\n'), "one record per line: {line}");
        validate_json(&line).unwrap_or_else(|e| panic!("{func}: {e}\n{line}"));
        assert!(
            line.contains("\"schema\": \"tossa-trace/1\""),
            "{func}: missing schema tag\n{line}"
        );
        for key in [
            "\"function\"",
            "\"experiment\"",
            "\"counters\"",
            "\"spans\"",
        ] {
            assert!(line.contains(key), "{func}: missing {key}\n{line}");
        }
        // The counter object is total: every counter key appears even
        // when zero, so downstream columnar readers never see holes.
        for c in Counter::ALL.iter() {
            assert!(
                line.contains(&format!("\"{}\":", c.name())),
                "{func}: missing counter key {}\n{line}",
                c.name()
            );
        }
    }
}

#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let doc = chrome_trace(&traced_suite());
    validate_json(&doc).unwrap_or_else(|e| panic!("{e}"));
    assert!(doc.contains("\"traceEvents\""));
    // Complete events carry phase, timestamp, duration, pid and tid.
    for key in [
        "\"ph\": \"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":",
        "\"tid\":",
    ] {
        assert!(doc.contains(key), "missing {key}");
    }
}

#[test]
fn validator_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "{\"a\": }",
        "[1, 2,]",
        "{\"a\": 1} trailing",
        "{\"a\": \"unterminated}",
        "nul",
    ] {
        assert!(validate_json(bad).is_err(), "accepted malformed: {bad:?}");
    }
}
