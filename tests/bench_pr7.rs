//! Pins the checked-in `BENCH_pr7.json` claims: the compile-service PR
//! adds a *service envelope* and a sustained-throughput dimension around
//! the pipeline — it must not change the translation itself. Every
//! deterministic cell (move counts, weighted counts, allocation stats,
//! non-advisory trace counters) is byte-identical to the `BENCH_pr6.json`
//! baseline, and the new v4 `throughput` object carries a plausible
//! sustained functions/sec figure. The snapshot is regenerated with
//! `cargo run --release -p tossa-bench --bin perf`.

use std::collections::BTreeMap;

use tossa::trace::json::{parse_json, Json};

/// Cache-policy counters exempted from cell identity (see bench_pr6.rs
/// and `bench-diff` — advisory, policy-dependent).
const ADVISORY: [&str; 2] = [
    "counter.analysis_cache_hits",
    "counter.analysis_cache_misses",
];

fn snapshot(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

/// Same extraction as bench_pr6.rs: every deterministic scalar of every
/// (suite × experiment) cell, excluding timing and advisory counters.
fn deterministic_cells(doc: &Json) -> BTreeMap<(String, String), BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        for e in s
            .get("experiments")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let exp = e.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let mut fields = BTreeMap::new();
            for key in ["moves", "weighted"] {
                if let Some(v) = e.get(key).and_then(Json::as_u64) {
                    fields.insert(key.to_string(), v);
                }
            }
            for (group, prefix) in [("alloc", "alloc."), ("counters", "counter.")] {
                if let Some(obj) = e.get(group).and_then(Json::as_obj) {
                    for (k, v) in obj {
                        if let Some(v) = v.as_u64() {
                            let field = format!("{prefix}{k}");
                            if !ADVISORY.contains(&field.as_str()) {
                                fields.insert(field, v);
                            }
                        }
                    }
                }
            }
            out.insert((suite.to_string(), exp.to_string()), fields);
        }
    }
    out
}

#[test]
fn snapshot_is_well_formed_v4() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pr7.json");
    let text = std::fs::read_to_string(path).unwrap();
    tossa::trace::validate_json(&text).expect("BENCH_pr7.json is well-formed JSON");
    assert!(
        text.contains("\"schema\": \"tossa-bench-trajectory/4\""),
        "snapshot must use the v4 schema"
    );
}

/// The service PR's cell-identity claim: adding the envelope (and the
/// separate job-counter set) shifted no deterministic cell — the
/// per-cell counter schema is untouched relative to PR 6.
#[test]
fn deterministic_cells_are_identical_to_the_pr6_baseline() {
    let old = deterministic_cells(&snapshot("BENCH_pr6.json"));
    let new = deterministic_cells(&snapshot("BENCH_pr7.json"));
    let keys: Vec<_> = old.keys().collect();
    assert_eq!(
        keys,
        new.keys().collect::<Vec<_>>(),
        "suite × experiment matrix changed shape"
    );
    for (key, o) in &old {
        assert_eq!(
            o, &new[key],
            "{}/{}: deterministic drift vs BENCH_pr6.json",
            key.0, key.1
        );
    }
}

/// The new dimension: a `throughput` object with the sustained
/// functions/sec measurement and enough metadata to reproduce it.
#[test]
fn snapshot_carries_the_throughput_dimension() {
    let doc = snapshot("BENCH_pr7.json");
    let t = doc
        .get("throughput")
        .unwrap_or_else(|| panic!("BENCH_pr7.json lacks the v4 throughput object"));
    for key in ["experiment", "threads", "functions", "wall_ns", "target_ms"] {
        assert!(t.get(key).is_some(), "throughput lacks {key:?}");
    }
    let fps = t
        .get("functions_per_sec")
        .and_then(Json::as_f64)
        .expect("functions_per_sec is a number");
    assert!(fps > 0.0, "sustained throughput must be positive: {fps}");
    let functions = t.get("functions").and_then(Json::as_u64).unwrap_or(0);
    let wall_ns = t.get("wall_ns").and_then(Json::as_u64).unwrap_or(0);
    assert!(functions > 0 && wall_ns > 0);
    // The recorded rate is consistent with its own numerator/denominator
    // (3 decimal places of slack from the formatter).
    let recomputed = functions as f64 * 1e9 / wall_ns as f64;
    assert!(
        (recomputed - fps).abs() / recomputed < 0.01,
        "functions_per_sec {fps} inconsistent with {functions} fns / {wall_ns} ns"
    );
}
