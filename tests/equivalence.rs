//! The master correctness property: every experiment pipeline of Table 1
//! preserves the observable behaviour of every benchmark function on
//! every sample input, and produces structurally valid non-SSA code.

use tossa::bench::runner::{run_experiment, verify};
use tossa::bench::suites::all_suites;
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::interfere::InterferenceMode;
use tossa::core::Experiment;

fn check_all(opts: &CoalesceOptions) {
    for suite in all_suites(12) {
        for bf in &suite.functions {
            for &exp in Experiment::all() {
                let r = run_experiment(&bf.func, exp, opts);
                r.func
                    .validate()
                    .unwrap_or_else(|e| panic!("{exp} on {}: invalid: {e}", bf.func.name));
                assert_eq!(
                    r.func
                        .all_insts()
                        .filter(|&(_, i)| r.func.inst(i).is_phi())
                        .count(),
                    0,
                    "{exp} left φs in {}",
                    bf.func.name
                );
                verify(&bf.func, &r.func, &bf.inputs)
                    .unwrap_or_else(|e| panic!("{exp} broke {e}\n{}", r.func));
            }
        }
    }
}

#[test]
fn all_experiments_preserve_semantics_base() {
    check_all(&CoalesceOptions::default());
}

#[test]
fn all_experiments_preserve_semantics_depth_variant() {
    check_all(&CoalesceOptions {
        depth_priority: true,
        ..Default::default()
    });
}

#[test]
fn all_experiments_preserve_semantics_optimistic() {
    check_all(&CoalesceOptions {
        mode: InterferenceMode::Optimistic,
        ..Default::default()
    });
}

#[test]
fn all_experiments_preserve_semantics_pessimistic() {
    check_all(&CoalesceOptions {
        mode: InterferenceMode::Pessimistic,
        ..Default::default()
    });
}
