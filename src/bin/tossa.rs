//! `tossa` — command-line driver for the out-of-SSA translator.
//!
//! ```text
//! tossa [OPTIONS] [FILE]           reads LAI text from FILE or stdin
//!
//!   --experiment <NAME>   pipeline to run (default: Lphi,ABI+C); one of
//!                         the Table-1 labels, e.g. "C", "Sphi+C", "LABI"
//!   --mode <exact|opt|pess>  interference variant (default: exact)
//!   --depth               use the Algorithm-3 depth variant
//!   --print-ssa           also print the (pinned) SSA form
//!   --run v1,v2,...       execute the function before/after on inputs
//!   --stats               print copy statistics
//! ```

use std::io::Read as _;
use tossa::bench::runner::{front_end, run_experiment};
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::collect::{pinning_abi, pinning_sp};
use tossa::core::interfere::InterferenceMode;
use tossa::core::{program_pinning, Experiment};
use tossa::ir::{interp, machine::Machine, parse::parse_function};

fn fail(msg: &str) -> ! {
    eprintln!("tossa: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "Lphi,ABI+C".to_string();
    let mut mode = InterferenceMode::Exact;
    let mut depth = false;
    let mut print_ssa = false;
    let mut stats = false;
    let mut run_inputs: Option<Vec<i64>> = None;
    let mut file: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" => {
                experiment = it
                    .next()
                    .unwrap_or_else(|| fail("--experiment needs a value"));
            }
            "--mode" => match it.next().as_deref() {
                Some("exact") => mode = InterferenceMode::Exact,
                Some("opt") => mode = InterferenceMode::Optimistic,
                Some("pess") => mode = InterferenceMode::Pessimistic,
                other => fail(&format!("bad --mode {other:?}")),
            },
            "--depth" => depth = true,
            "--print-ssa" => print_ssa = true,
            "--stats" => stats = true,
            "--run" => {
                let vals = it.next().unwrap_or_else(|| fail("--run needs v1,v2,..."));
                let parsed: Result<Vec<i64>, _> = vals
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect();
                run_inputs =
                    Some(parsed.unwrap_or_else(|_| fail("bad --run values (need integers)")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: tossa [--experiment NAME] [--mode exact|opt|pess] [--depth]\n\
                     \x20            [--print-ssa] [--stats] [--run v1,v2,...] [FILE]"
                );
                return;
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => fail(&format!("unknown option `{other}`")),
        }
    }

    let text = match file {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
            buf
        }
    };

    let machine = Machine::dsp32();
    let src = parse_function(&text, &machine).unwrap_or_else(|e| fail(&format!("parse: {e}")));
    src.validate()
        .unwrap_or_else(|e| fail(&format!("invalid input: {e}")));

    let exp = Experiment::all()
        .iter()
        .copied()
        .find(|e| e.label().eq_ignore_ascii_case(&experiment))
        .unwrap_or_else(|| {
            fail(&format!(
                "unknown experiment `{experiment}`; choose from: {}",
                Experiment::all()
                    .iter()
                    .map(|e| e.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        });
    let opts = CoalesceOptions {
        mode,
        depth_priority: depth,
        ..Default::default()
    };

    if print_ssa {
        let mut ssa = front_end(&src);
        pinning_sp(&mut ssa);
        if exp.passes().pinning_abi {
            pinning_abi(&mut ssa);
        }
        if exp.passes().pinning_phi {
            program_pinning(&mut ssa, &opts);
        }
        println!("== pinned SSA ==\n{ssa}");
    }

    let result = run_experiment(&src, exp, &opts);
    println!("== {} ==\n{}", exp.label(), result.func);
    if stats {
        println!(
            "moves: {} (weighted {}); φ copies {}, ABI copies {}, repairs {}, temps {}, \
             coalesced away {}",
            result.moves,
            result.weighted,
            result.recon.phi_copies,
            result.recon.abi_copies,
            result.recon.repair_copies,
            result.recon.temp_copies,
            result.coalesced
        );
    }
    if let Some(inputs) = run_inputs {
        let before = interp::run(&src, &inputs, 10_000_000)
            .unwrap_or_else(|e| fail(&format!("source traps: {e}")));
        let after = interp::run(&result.func, &inputs, 10_000_000)
            .unwrap_or_else(|e| fail(&format!("translated code traps: {e}")));
        println!("source outputs:     {:?}", before.outputs);
        println!("translated outputs: {:?}", after.outputs);
        if before.outputs != after.outputs {
            fail("TRANSLATION CHANGED BEHAVIOUR");
        }
        println!("semantics preserved ✓");
    }
}
