//! # tossa — Translation Out of SSA with renaming constraints
//!
//! A from-scratch reproduction of **“Optimizing Translation Out of SSA
//! Using Renaming Constraints”** (F. Rastello, F. de Ferrière,
//! C. Guillon — CGO 2004): a pinning-based register coalescing algorithm
//! that runs *during* the out-of-SSA translation and is aware of
//! machine-level renaming constraints (ABI parameter passing, dedicated
//! registers, two-operand instructions).
//!
//! The workspace is organized as the paper's system plus every substrate
//! it depends on:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ir`] | machine-level linear IR, machine model, parser/printer, interpreter, parallel copies |
//! | [`analysis`] | dominators, dominance frontiers, loops, liveness, interference |
//! | [`ssa`] | pruned SSA construction, verifier, SSA optimizations, ψ-SSA lowering |
//! | [`core`] | the paper's contribution: pinning, interference classes, affinity graph coalescing, Leung–George mark/reconstruct |
//! | [`baselines`] | Briggs-style naive replacement, Sreedhar et al. Method III, Chaitin coalescing |
//! | [`bench`](mod@bench) | the five benchmark suites and the harness regenerating Tables 1–5 |
//! | [`trace`] | zero-cost-when-disabled pass tracing: spans, counters, JSONL/Chrome-trace export |
//! | [`server`] | fault-isolated compile service: panic containment, resource budgets, degradation ladder, chaos soak |
//!
//! ## Quickstart
//!
//! ```
//! use tossa::ir::{machine::Machine, parse::parse_function, interp};
//! use tossa::ssa::to_ssa;
//! use tossa::core::{coalesce, reconstruct, collect};
//!
//! // A small accumulator loop, written as ordinary (pre-SSA) code.
//! let text = "
//! func @sum {
//! entry:
//!   %n = input
//!   %acc = make 0
//!   %i = make 0
//!   jump head
//! head:
//!   %c = cmplt %i, %n
//!   br %c, body, exit
//! body:
//!   %acc = add %acc, %i
//!   %i = addi %i, 1
//!   jump head
//! exit:
//!   ret %acc
//! }";
//! let mut f = parse_function(text, &Machine::dsp32())?;
//! let reference = interp::run(&f, &[10], 10_000)?;
//!
//! to_ssa(&mut f);                                   // Cytron et al., pruned
//! collect::pinning_sp(&mut f);                      // dedicated-register web
//! collect::pinning_abi(&mut f);                     // ABI/ISA constraints
//! coalesce::program_pinning(&mut f, &Default::default()); // the paper's coalescer
//! let stats = reconstruct::out_of_pinned_ssa(&mut f);     // Leung–George
//!
//! assert_eq!(stats.phi_copies, 0); // both φ webs fully coalesced
//! assert_eq!(interp::run(&f, &[10], 10_000)?.outputs, reference.outputs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use tossa_analysis as analysis;
pub use tossa_baselines as baselines;
pub use tossa_bench as bench;
pub use tossa_core as core;
pub use tossa_ir as ir;
pub use tossa_regalloc as regalloc;
pub use tossa_server as server;
pub use tossa_ssa as ssa;
pub use tossa_trace as trace;
